//! Network-level experiment driver: generates per-layer weights once and
//! runs them through any number of design points — the workhorse behind the
//! Figure 9–12 sweeps.

use ucnn_model::{ConvLayer, NetworkSpec, QuantScheme, WeightGen};
use ucnn_tensor::Tensor4;

use crate::chip::{sum_reports, LayerReport, Simulator};
use crate::config::ArchConfig;

/// A synthetic-workload specification: which quantization grid, at what
/// weight density, against what input activation density.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Quantization scheme (defines `U` and the value distribution).
    pub scheme: QuantScheme,
    /// Fraction of non-zero weights.
    pub weight_density: f64,
    /// Fraction of non-zero input activations (paper: 0.35).
    pub act_density: f64,
    /// Base RNG seed; per-layer seeds derive deterministically.
    pub seed: u64,
}

impl WorkloadSpec {
    /// INQ-like default: `U = 17`, 90 % weight density, 35 % activations.
    #[must_use]
    pub fn inq(seed: u64) -> Self {
        Self {
            scheme: QuantScheme::inq(),
            weight_density: 0.9,
            act_density: 0.35,
            seed,
        }
    }

    /// Design-space workload: `uniform_unique(u)` at the given density
    /// (the §VI-B methodology).
    #[must_use]
    pub fn uniform(u: usize, weight_density: f64, seed: u64) -> Self {
        Self {
            scheme: QuantScheme::uniform_unique(u),
            weight_density,
            act_density: 0.35,
            seed,
        }
    }

    /// Generates the weights for one layer (deterministic per layer index).
    #[must_use]
    pub fn weights_for(&self, layer: &ConvLayer, index: usize) -> Tensor4<i16> {
        let mut gen = WeightGen::new(
            self.scheme.clone(),
            self.seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        )
        .with_density(self.weight_density);
        gen.generate(layer)
    }
}

/// Simulation results for one design point over a whole network.
#[derive(Clone, Debug)]
pub struct NetworkReport {
    /// Design-point name.
    pub arch: String,
    /// Per-layer reports, in network order.
    pub layers: Vec<LayerReport>,
    /// Network totals.
    pub total: LayerReport,
}

impl NetworkReport {
    /// Total energy relative to `base`.
    #[must_use]
    pub fn energy_vs(&self, base: &NetworkReport) -> f64 {
        self.total.energy.total_pj() / base.total.energy.total_pj()
    }

    /// Total cycles relative to `base`.
    #[must_use]
    pub fn runtime_vs(&self, base: &NetworkReport) -> f64 {
        self.total.cycles / base.total.cycles
    }
}

/// Runs every design over every weight-bearing layer of `net`, generating
/// each layer's weights once. `sample_units` bounds the per-layer UCNN
/// compile (use `usize::MAX` for exact).
///
/// Layers whose weight tensors would be enormous are still exact for the
/// dense designs; UCNN plans extrapolate from the sampled filter groups.
#[must_use]
pub fn simulate_designs(
    designs: &[ArchConfig],
    net: &NetworkSpec,
    spec: &WorkloadSpec,
    sample_units: usize,
) -> Vec<NetworkReport> {
    let layers = net.conv_layers();
    let mut per_design: Vec<Vec<LayerReport>> = vec![Vec::new(); designs.len()];
    for (li, layer) in layers.iter().enumerate() {
        let weights = spec.weights_for(layer, li);
        for (di, design) in designs.iter().enumerate() {
            let sim = Simulator::new(design.clone()).with_sampling(sample_units);
            per_design[di].push(sim.simulate_layer(layer, &weights, spec.act_density));
        }
    }
    designs
        .iter()
        .zip(per_design)
        .map(|(design, layers)| {
            let total = sum_reports(&design.name, &layers);
            NetworkReport {
                arch: design.name.clone(),
                layers,
                total,
            }
        })
        .collect()
}

/// The optimistic runtime model of Figure 11: normalized UCNN runtime =
/// stream entries over dense positions (no bubbles, stalls or imbalance),
/// with weights drawn uniformly at `density`. `DCNN_sp` is the flat 1.0
/// baseline.
///
/// Uses a representative 3×3×256 ResNet-style filter bank.
#[must_use]
pub fn optimistic_runtime_ratio(g: usize, density: f64, seed: u64) -> f64 {
    use ucnn_core::compile::{compile_layer, UcnnConfig};
    let mut gen = WeightGen::new(QuantScheme::uniform_unique(17), seed).with_density(density);
    let weights = gen.generate_dims(16, 256, 3, 3);
    let plan = compile_layer(&weights, &UcnnConfig::with_g(g));
    // One stream serves G filters, so the per-filter entry cost is entries·G
    // over the dense positions; with G·VW = 8 lanes this is exactly the
    // runtime normalized to the 8-wide dense baseline.
    (plan.totals().entries * g) as f64 / plan.dense_weights() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{evaluation_designs, ArchConfig};
    use ucnn_model::networks;

    #[test]
    fn lenet_sweep_produces_one_report_per_design() {
        let designs = evaluation_designs(16);
        let reports = simulate_designs(
            &designs,
            &networks::lenet(),
            &WorkloadSpec::uniform(17, 0.9, 42),
            8,
        );
        assert_eq!(reports.len(), designs.len());
        for r in &reports {
            assert_eq!(r.layers.len(), 5);
            assert!(r.total.energy.total_pj() > 0.0, "{}", r.arch);
        }
    }

    #[test]
    fn ucnn_energy_ordering_matches_paper() {
        // Each UCNN Uxx runs on a workload quantized to U = xx (§VI-A);
        // normalized against the DCNN baseline on the same workload, savings
        // must order U3 > U17 > U256, all beating the dense baseline
        // (16-bit, 50% density).
        let net = networks::lenet();
        let mut normalized = Vec::new();
        for u in [3usize, 17, 256] {
            let spec = WorkloadSpec::uniform(u, 0.5, 7);
            let designs = vec![ArchConfig::dcnn(16), ArchConfig::ucnn(u, 16)];
            let reports = simulate_designs(&designs, &net, &spec, 8);
            normalized.push(reports[1].energy_vs(&reports[0]));
        }
        assert!(
            normalized[0] < normalized[1],
            "U3 {:.3} vs U17 {:.3}",
            normalized[0],
            normalized[1]
        );
        assert!(
            normalized[1] < normalized[2],
            "U17 {:.3} vs U256 {:.3}",
            normalized[1],
            normalized[2]
        );
        assert!(normalized[2] < 1.0, "U256 {:.3}", normalized[2]);
    }

    #[test]
    fn figure11_shape_union_of_nonzeros() {
        // G=1 tracks density linearly; larger G saturates toward 1.
        let r_g1 = optimistic_runtime_ratio(1, 0.5, 1);
        let r_g2 = optimistic_runtime_ratio(2, 0.5, 1);
        let r_g4 = optimistic_runtime_ratio(4, 0.5, 1);
        assert!((r_g1 - 0.5).abs() < 0.03, "G1 at d=0.5: {r_g1}");
        assert!((r_g2 - 0.75).abs() < 0.04, "G2 at d=0.5: {r_g2}");
        assert!((r_g4 - 0.94).abs() < 0.04, "G4 at d=0.5: {r_g4}");
        assert!(r_g1 < r_g2 && r_g2 < r_g4);
    }

    #[test]
    fn workload_weights_are_deterministic() {
        let net = networks::tiny();
        let layer = &net.conv_layers()[0];
        let spec = WorkloadSpec::inq(9);
        assert_eq!(spec.weights_for(layer, 0), spec.weights_for(layer, 0));
        assert_ne!(spec.weights_for(layer, 0), spec.weights_for(layer, 1));
    }

    #[test]
    fn g_tradeoff_energy_vs_runtime() {
        // §VI-C: larger G saves energy (table compression) but costs
        // runtime (union entries). Evaluated at U = 3 where G = 4 satisfies
        // the §III-B feasibility condition R·S·C > U^G — at large U, deep
        // grouping instead *inflates* tables with skip entries, which is
        // why Table II pairs U17 with G = 2 and U3 with G = 4.
        let net = networks::lenet();
        let spec = WorkloadSpec::uniform(3, 0.5, 3);
        let g1 = simulate_designs(&[ArchConfig::ucnn(3, 16).with_g(1)], &net, &spec, 8);
        let g4 = simulate_designs(&[ArchConfig::ucnn(3, 16).with_g(4)], &net, &spec, 8);
        assert!(
            g4[0].total.model_bits < g1[0].total.model_bits,
            "tables compress with G: {} vs {}",
            g4[0].total.model_bits,
            g1[0].total.model_bits
        );
        assert!(
            g4[0].total.cycles > g1[0].total.cycles,
            "union entries cost cycles"
        );
    }
}
