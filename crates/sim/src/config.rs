//! Architecture configurations — the design points of the paper's Table II,
//! plus knobs for ablations.
//!
//! All designs are throughput-normalized (§VI-A): every PE performs the work
//! of 8 dense multiplies per cycle — DCNN via `VK = 8` output-channel
//! lanes, UCNN via `G · VW = 8` (filters per table × spatial lanes).

use ucnn_core::compile::UcnnConfig;
use ucnn_core::encoding::EncodingParams;

/// Which microarchitecture a design point uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ArchKind {
    /// Dense baseline PE (§IV-A): no sparsity or repetition optimizations.
    Dcnn,
    /// DCNN with Eyeriss-style sparsity: zero-operand multiply gating at the
    /// PE and run-length-encoded weights in DRAM (§VI-A).
    DcnnSp,
    /// The UCNN PE: factorized dot products, activation-group reuse, spatial
    /// vectorization (§IV).
    Ucnn,
}

/// A complete design point for the chip-level model.
#[derive(Clone, Debug, PartialEq)]
pub struct ArchConfig {
    /// Display name (e.g. `"UCNN U17"`).
    pub name: String,
    /// Microarchitecture family.
    pub kind: ArchKind,
    /// Number of processing elements (`P`, Table II: 32).
    pub pes: usize,
    /// DCNN output-channel vector width (`VK`).
    pub vk: usize,
    /// UCNN spatial vector width (`VW`).
    pub vw: usize,
    /// UCNN filters per shared indirection table (`G`).
    pub g: usize,
    /// Channel tile `Ct`.
    pub ct: usize,
    /// Maximum activation-group size (§IV-B: 16).
    pub group_cap: usize,
    /// Weight precision (bits).
    pub weight_bits: u32,
    /// Activation precision (bits).
    pub act_bits: u32,
    /// Table encoding for UCNN DRAM storage and PE walks.
    pub encoding: EncodingParams,
    /// L1 input buffer capacity in bytes (Table II).
    pub l1_input_bytes: usize,
    /// L1 weight(+table) buffer capacity in bytes (Table II).
    pub l1_weight_bytes: usize,
    /// L1 partial-sum buffer capacity in bytes.
    pub l1_psum_bytes: usize,
    /// L2 (global buffer) capacity in bytes available for activations.
    pub l2_act_bytes: usize,
    /// L2 capacity in bytes available for weights (sets the `Kc` chunking).
    pub l2_weight_bytes: usize,
}

impl ArchConfig {
    /// The dense DCNN baseline (Table II row 1).
    #[must_use]
    pub fn dcnn(weight_bits: u32) -> Self {
        Self {
            name: "DCNN".to_string(),
            kind: ArchKind::Dcnn,
            pes: 32,
            vk: 8,
            vw: 1,
            g: 1,
            ct: 8,
            group_cap: 16,
            weight_bits,
            act_bits: weight_bits,
            encoding: EncodingParams::default(),
            l1_input_bytes: 144,
            l1_weight_bytes: 1152,
            l1_psum_bytes: 256,
            l2_act_bytes: 256 * 1024,
            l2_weight_bytes: 128 * 1024,
        }
    }

    /// DCNN with Eyeriss-style sparsity optimizations (Table II row 2).
    #[must_use]
    pub fn dcnn_sp(weight_bits: u32) -> Self {
        Self {
            name: "DCNN_sp".to_string(),
            kind: ArchKind::DcnnSp,
            ..Self::dcnn(weight_bits)
        }
    }

    /// A UCNN design point sized for `u` unique weights, choosing the
    /// Table II `G`/`VW` split: `U = 3 → (G 4, VW 2)`, `U = 17 → (G 2, VW
    /// 4)`, larger `U → (G 1, VW 8)`.
    #[must_use]
    pub fn ucnn(u: usize, weight_bits: u32) -> Self {
        let (g, vw, l1_input, l1_weight) = match u {
            0..=8 => (4, 2, 768, 129),
            9..=32 => (2, 4, 1152, 232),
            _ => (1, 8, 1920, 652),
        };
        Self {
            name: format!("UCNN U{u}"),
            kind: ArchKind::Ucnn,
            pes: 32,
            vk: 1,
            vw,
            g,
            ct: 64,
            group_cap: 16,
            weight_bits,
            act_bits: weight_bits,
            encoding: EncodingParams::default(),
            l1_input_bytes: l1_input,
            l1_weight_bytes: l1_weight,
            l1_psum_bytes: 256,
            l2_act_bytes: 256 * 1024,
            l2_weight_bytes: 128 * 1024,
        }
    }

    /// Overrides `G` (and resets `VW` to keep `G · VW = 8`).
    ///
    /// # Panics
    ///
    /// Panics unless `g ∈ {1, 2, 4, 8}`.
    #[must_use]
    pub fn with_g(mut self, g: usize) -> Self {
        assert!(
            matches!(g, 1 | 2 | 4 | 8),
            "G must divide the 8-wide budget"
        );
        self.g = g;
        self.vw = 8 / g;
        self
    }

    /// Overrides the table encoding (e.g. jump tables for Figure 14).
    #[must_use]
    pub fn with_encoding(mut self, encoding: EncodingParams) -> Self {
        self.encoding = encoding;
        self
    }

    /// Dense multiply-equivalents this design retires per PE per cycle
    /// (the throughput-normalization invariant: 8 for all presets).
    #[must_use]
    pub fn work_per_cycle(&self) -> usize {
        match self.kind {
            ArchKind::Dcnn | ArchKind::DcnnSp => self.vk,
            ArchKind::Ucnn => self.g * self.vw,
        }
    }

    /// The compiler configuration matching this design point.
    #[must_use]
    pub fn ucnn_config(&self) -> UcnnConfig {
        UcnnConfig {
            g: self.g,
            ct: self.ct,
            group_cap: self.group_cap,
            weight_bits: self.weight_bits,
            encoding: self.encoding,
        }
    }
}

/// The evaluation's standard design points at a given precision:
/// `[DCNN, DCNN_sp, UCNN U3, UCNN U17, UCNN U64, UCNN U256]` (§VI-A).
#[must_use]
pub fn evaluation_designs(weight_bits: u32) -> Vec<ArchConfig> {
    vec![
        ArchConfig::dcnn(weight_bits),
        ArchConfig::dcnn_sp(weight_bits),
        ArchConfig::ucnn(3, weight_bits),
        ArchConfig::ucnn(17, weight_bits),
        ArchConfig::ucnn(64, weight_bits),
        ArchConfig::ucnn(256, weight_bits),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_are_throughput_normalized() {
        for d in evaluation_designs(16) {
            assert_eq!(d.work_per_cycle(), 8, "{}", d.name);
            assert_eq!(d.pes, 32, "{}", d.name);
        }
    }

    #[test]
    fn table2_g_vw_split() {
        let u3 = ArchConfig::ucnn(3, 16);
        assert_eq!((u3.g, u3.vw), (4, 2));
        let u17 = ArchConfig::ucnn(17, 16);
        assert_eq!((u17.g, u17.vw), (2, 4));
        let u64 = ArchConfig::ucnn(64, 16);
        assert_eq!((u64.g, u64.vw), (1, 8));
        let u256 = ArchConfig::ucnn(256, 16);
        assert_eq!((u256.g, u256.vw), (1, 8));
    }

    #[test]
    fn table2_l1_capacities() {
        assert_eq!(ArchConfig::dcnn(16).l1_input_bytes, 144);
        assert_eq!(ArchConfig::dcnn(16).l1_weight_bytes, 1152);
        assert_eq!(ArchConfig::ucnn(3, 16).l1_weight_bytes, 129);
        assert_eq!(ArchConfig::ucnn(17, 16).l1_input_bytes, 1152);
        assert_eq!(ArchConfig::ucnn(256, 16).l1_weight_bytes, 652);
    }

    #[test]
    fn with_g_keeps_budget() {
        let d = ArchConfig::ucnn(17, 16).with_g(4);
        assert_eq!(d.g * d.vw, 8);
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn with_g_rejects_odd_split() {
        let _ = ArchConfig::ucnn(17, 16).with_g(3);
    }

    #[test]
    fn ucnn_config_propagates_knobs() {
        let d = ArchConfig::ucnn(17, 8);
        let cfg = d.ucnn_config();
        assert_eq!(cfg.g, 2);
        assert_eq!(cfg.weight_bits, 8);
        assert_eq!(cfg.ct, 64);
    }
}
