//! Accelerator-level cycle and energy model for the UCNN reproduction
//! (paper §IV–§VI): the dense baseline PE (`DCNN`), the Eyeriss-style
//! sparse baseline (`DCNN_sp`), and the UCNN PE with factorized dot
//! products and activation-group reuse — plus the chip-level dataflow,
//! DRAM/L2/NoC traffic, energy and area models.
//!
//! # Modules
//!
//! * [`config`] — the Table II design points ([`config::ArchConfig`]).
//! * [`energy`] — per-event energies (Horowitz/CACTI-calibrated, 32 nm).
//! * [`area`] — the Table III PE area model (RTL stand-in).
//! * [`lane`] — cycle-accurate UCNN lane (Figure 6/7 datapath, with
//!   dispatch-queue stalls and table bubbles).
//! * [`banking`] — the §IV-D conflict-free banked input buffer
//!   (Equations 3/4).
//! * [`chip`] — per-layer simulation ([`chip::Simulator`]).
//! * [`driver`] — network-level sweeps ([`driver::simulate_designs`]).
//!
//! # Quickstart
//!
//! ```
//! use ucnn_model::{networks, QuantScheme, WeightGen};
//! use ucnn_sim::chip::Simulator;
//! use ucnn_sim::config::ArchConfig;
//!
//! let net = networks::lenet();
//! let layer = net.conv_layer("conv2").unwrap();
//! let mut gen = WeightGen::new(QuantScheme::inq(), 1).with_density(0.9);
//! let weights = gen.generate(&layer);
//!
//! let baseline = Simulator::new(ArchConfig::dcnn_sp(16)).simulate_layer(&layer, &weights, 0.35);
//! let ucnn = Simulator::new(ArchConfig::ucnn(17, 16)).simulate_layer(&layer, &weights, 0.35);
//! assert!(ucnn.energy.total_pj() < baseline.energy.total_pj());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod area;
pub mod banking;
pub mod chip;
pub mod config;
pub mod driver;
pub mod energy;
pub mod lane;

pub use chip::{LayerReport, Simulator};
pub use config::{evaluation_designs, ArchConfig, ArchKind};
pub use driver::{simulate_designs, NetworkReport, WorkloadSpec};
pub use energy::{EnergyBreakdown, EnergyModel};
