//! Spatially vectorized input-buffer banking (paper §IV-D, Equations 3/4).
//!
//! UCNN's indirected input reads are irregular, so the input SRAM cannot do
//! vector reads. Spatial vectorization instead reads `VW` *banks* in
//! parallel — one activation per lane — and the paper's fill/access strategy
//! guarantees the `VW` lanes of one indirection never collide:
//!
//! ```text
//! bank(r, s, c, v) = (r + v) mod VW                                 (3)
//! addr(r, s, c, v) = s·Ct + c + ceil((r + v)/VW)·S·Ct               (4)
//! ```
//!
//! for vector slot `v ∈ [0, VW)` at base coordinate `(r, s, c)`. This module
//! implements the mapping, proves conflict-freedom (tests), and reports the
//! paper's storage overhead: a `((R+VW−1) mod VW)/(R+VW−1)` fraction of
//! addresses is un-addressable, always < 2×, and zero for aligned choices
//! such as `VW = 2, R = 3`.

/// The §IV-D banked input buffer geometry for one `(R, S, Ct, VW)` tile.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BankedInputBuffer {
    r: usize,
    s: usize,
    ct: usize,
    vw: usize,
}

/// A physical location in the banked buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BankSlot {
    /// Bank index in `[0, VW)`.
    pub bank: usize,
    /// Address within the bank.
    pub addr: usize,
}

impl BankedInputBuffer {
    /// Creates the buffer geometry.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero.
    #[must_use]
    pub fn new(r: usize, s: usize, ct: usize, vw: usize) -> Self {
        assert!(
            r > 0 && s > 0 && ct > 0 && vw > 0,
            "parameters must be positive"
        );
        Self { r, s, ct, vw }
    }

    /// Spatial vector width `VW` (= bank count).
    #[must_use]
    pub fn vw(&self) -> usize {
        self.vw
    }

    /// Equation (3): the bank holding vector slot `v` of base `(r, s, c)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate or slot is out of range.
    #[must_use]
    pub fn bank(&self, r: usize, s: usize, c: usize, v: usize) -> usize {
        self.check(r, s, c, v);
        (r + v) % self.vw
    }

    /// Equation (4): the in-bank address of vector slot `v` of `(r, s, c)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate or slot is out of range.
    #[must_use]
    pub fn addr(&self, r: usize, s: usize, c: usize, v: usize) -> usize {
        self.check(r, s, c, v);
        s * self.ct + c + (r + v).div_ceil(self.vw) * self.s * self.ct
    }

    /// Both coordinates at once.
    #[must_use]
    pub fn slot(&self, r: usize, s: usize, c: usize, v: usize) -> BankSlot {
        BankSlot {
            bank: self.bank(r, s, c, v),
            addr: self.addr(r, s, c, v),
        }
    }

    fn check(&self, r: usize, s: usize, c: usize, v: usize) {
        assert!(r < self.r, "r={r} out of range ({})", self.r);
        assert!(s < self.s, "s={s} out of range ({})", self.s);
        assert!(c < self.ct, "c={c} out of range ({})", self.ct);
        assert!(v < self.vw, "v={v} out of range ({})", self.vw);
    }

    /// Addresses per bank needed to hold the `Ct·S·(R + VW − 1)` logical
    /// activations under the Equation-4 layout.
    #[must_use]
    pub fn addresses_per_bank(&self) -> usize {
        // Highest row index used is r + v ≤ R + VW − 2 → row group count.
        let row_groups = (self.r + self.vw - 1).div_ceil(self.vw) + 1;
        row_groups * self.s * self.ct
    }

    /// The paper's storage-overhead fraction: un-addressable share of the
    /// buffer, `((R + VW − 1) mod VW) / (R + VW − 1)` — always < 1/2 of
    /// extra capacity (i.e. total overhead < 2×), zero when `VW | (R+VW−1)`.
    #[must_use]
    pub fn storage_overhead(&self) -> f64 {
        let span = self.r + self.vw - 1;
        (span % self.vw) as f64 / span as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    /// The §IV-D claim: "bank(r,s,c,v) always yields a different output for
    /// fixed (r,s,c), varying v" — i.e. one indirection's VW lanes never
    /// collide.
    #[test]
    fn conflict_free_across_vector_slots() {
        for vw in [2usize, 4, 8] {
            let buf = BankedInputBuffer::new(3, 3, 16, vw);
            for r in 0..3 {
                for s in 0..3 {
                    for c in 0..16 {
                        let banks: HashSet<usize> = (0..vw).map(|v| buf.bank(r, s, c, v)).collect();
                        assert_eq!(banks.len(), vw, "collision at ({r},{s},{c}) vw={vw}");
                    }
                }
            }
        }
    }

    /// Distinct logical coordinates mapping to the same bank get distinct
    /// addresses (the layout is injective per bank).
    #[test]
    fn per_bank_addresses_are_injective() {
        let buf = BankedInputBuffer::new(3, 3, 8, 4);
        let mut seen: HashSet<(usize, usize, usize)> = HashSet::new(); // (bank, addr, marker)
        let mut placed: HashSet<(usize, usize)> = HashSet::new();
        for r in 0..3 {
            for s in 0..3 {
                for c in 0..8 {
                    for v in 0..4 {
                        // Each (row = r+v, s, c) logical activation has one home.
                        let slot = buf.slot(r, s, c, v);
                        let logical = (r + v, s * 8 + c);
                        if placed.contains(&logical) {
                            continue;
                        }
                        placed.insert(logical);
                        assert!(
                            seen.insert((slot.bank, slot.addr, 0)),
                            "two activations share bank {} addr {}",
                            slot.bank,
                            slot.addr
                        );
                    }
                }
            }
        }
    }

    /// The same logical activation (row = r+v) maps to the same physical
    /// slot no matter which (r, v) decomposition reaches it — required for
    /// the slide reuse that motivates the layout.
    #[test]
    fn decompositions_agree() {
        let buf = BankedInputBuffer::new(3, 3, 8, 4);
        // row 2 reachable as (r=2,v=0), (r=1,v=1), (r=0,v=2).
        let a = buf.slot(2, 1, 3, 0);
        let b = buf.slot(1, 1, 3, 1);
        let c = buf.slot(0, 1, 3, 2);
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    /// Paper: "VW = 2 for R = 3" completely eliminates the storage overhead.
    #[test]
    fn overhead_zero_for_vw2_r3() {
        let buf = BankedInputBuffer::new(3, 3, 16, 2);
        assert_eq!(buf.storage_overhead(), 0.0);
    }

    /// Paper: "this space overhead is always < 2×".
    #[test]
    fn overhead_always_below_two_x() {
        for r in 1..=11 {
            for vw in 1..=8 {
                let buf = BankedInputBuffer::new(r, 3, 4, vw);
                let oh = buf.storage_overhead();
                assert!((0.0..0.5).contains(&oh), "R={r} VW={vw}: {oh}");
            }
        }
    }

    #[test]
    fn addresses_per_bank_covers_span() {
        let buf = BankedInputBuffer::new(3, 3, 8, 4);
        // Row span R+VW-1 = 6 rows → 3 row-groups (ceil(6/4)+1), × S × Ct.
        assert_eq!(buf.addresses_per_bank(), 3 * 3 * 8);
        // Every slot must fit.
        for r in 0..3 {
            for s in 0..3 {
                for c in 0..8 {
                    for v in 0..4 {
                        assert!(buf.addr(r, s, c, v) < buf.addresses_per_bank());
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_slot() {
        let buf = BankedInputBuffer::new(3, 3, 8, 4);
        let _ = buf.bank(0, 0, 0, 4);
    }
}
