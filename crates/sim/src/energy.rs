//! Energy model: per-event energies in picojoules at 32 nm / 1 GHz,
//! following the paper's §VI-A methodology.
//!
//! Calibration sources (all public, as cited by the paper):
//!
//! * **Arithmetic** — Horowitz, ISSCC'14, scaled to 32 nm. The paper states
//!   the multiplier costs explicitly in §VII: "an 8 bit and 16 bit fixed
//!   point multiply in 32 nm is .1 and .4 pJ". Adds follow the same source's
//!   ratio (≈8× cheaper than the same-width multiply).
//! * **SRAM** — CACTI (`itrs-lop`). The paper's §VII gives two calibration
//!   points: a 512-entry × 8-bit SRAM read costs 0.17 pJ and a 32K-entry ×
//!   16-bit read costs 2.5 pJ. Fitting `E = k · bytes^0.4 · (width/8)`
//!   through those points gives `k ≈ 0.014` (0.17 = k·512^0.4,
//!   2.5 ≈ k·65536^0.4·2), which this module uses for every SRAM.
//! * **DRAM** — 20 pJ/bit (§VI-A, from Horowitz).
//! * **NoC** — low-swing differential wires: a small per-bit transfer cost
//!   plus a static per-cycle cost that accrues "each cycle (regardless of
//!   whether data is transferred)" (§VI-A).

/// Per-event energy constants. Construct via [`EnergyModel::default`] (the
/// paper's calibration) and override fields for sensitivity studies.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnergyModel {
    /// 8-bit fixed-point multiply (pJ).
    pub mult8_pj: f64,
    /// 16-bit fixed-point multiply (pJ).
    pub mult16_pj: f64,
    /// 8-bit add (pJ).
    pub add8_pj: f64,
    /// 16-bit add (pJ).
    pub add16_pj: f64,
    /// 32-bit accumulate (partial sums) (pJ).
    pub add32_pj: f64,
    /// DRAM access energy per bit (pJ/bit).
    pub dram_pj_per_bit: f64,
    /// SRAM fit constant `k` in `E = k · bytes^0.4 · (width/8)`.
    pub sram_k: f64,
    /// SRAM capacity exponent (0.4 fits the paper's two CACTI points).
    pub sram_exp: f64,
    /// NoC transfer energy per bit (pJ/bit).
    pub noc_pj_per_bit: f64,
    /// NoC static energy per chip cycle (pJ/cycle) — low-swing differential
    /// wires burn power continuously.
    pub noc_static_pj_per_cycle: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self {
            mult8_pj: 0.1,
            mult16_pj: 0.4,
            add8_pj: 0.013,
            add16_pj: 0.05,
            add32_pj: 0.1,
            dram_pj_per_bit: 20.0,
            sram_k: 0.014,
            sram_exp: 0.4,
            noc_pj_per_bit: 0.05,
            noc_static_pj_per_cycle: 2.0,
        }
    }
}

impl EnergyModel {
    /// SRAM read/write energy for one access of `width_bits` from a buffer
    /// of `capacity_bytes` (pJ).
    ///
    /// # Examples
    ///
    /// ```
    /// use ucnn_sim::energy::EnergyModel;
    ///
    /// let e = EnergyModel::default();
    /// // The paper's calibration points (§VII):
    /// let small = e.sram_access_pj(512, 8);     // 512-entry × 8-bit
    /// let large = e.sram_access_pj(65536, 16);  // 32K-entry × 16-bit
    /// assert!((small - 0.17).abs() < 0.02);
    /// assert!((large - 2.5).abs() < 0.3);
    /// ```
    #[must_use]
    pub fn sram_access_pj(&self, capacity_bytes: usize, width_bits: u32) -> f64 {
        let cap = (capacity_bytes.max(1)) as f64;
        self.sram_k * cap.powf(self.sram_exp) * (f64::from(width_bits) / 8.0)
    }

    /// Multiply energy at the given operand precision (pJ). Widths above 8
    /// bits are charged at the 16-bit rate (the UCNN multiplier is at most 4
    /// bits wider on one input; §IV-B).
    #[must_use]
    pub fn mult_pj(&self, bits: u32) -> f64 {
        if bits <= 8 {
            self.mult8_pj
        } else {
            self.mult16_pj
        }
    }

    /// Add energy at the given operand precision (pJ).
    #[must_use]
    pub fn add_pj(&self, bits: u32) -> f64 {
        if bits <= 8 {
            self.add8_pj
        } else if bits <= 16 {
            self.add16_pj
        } else {
            self.add32_pj
        }
    }

    /// DRAM energy for moving `bits` (pJ).
    #[must_use]
    pub fn dram_pj(&self, bits: f64) -> f64 {
        bits * self.dram_pj_per_bit
    }
}

/// Energy breakdown matching the paper's Figure 9 stacking: DRAM, L2 + NoC,
/// and PE (all in pJ).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Off-chip DRAM traffic energy.
    pub dram_pj: f64,
    /// Global buffer plus network-on-chip energy.
    pub l2_noc_pj: f64,
    /// Processing-element energy (L1 buffers, tables, arithmetic).
    pub pe_pj: f64,
}

impl EnergyBreakdown {
    /// Total energy (pJ).
    #[must_use]
    pub fn total_pj(&self) -> f64 {
        self.dram_pj + self.l2_noc_pj + self.pe_pj
    }

    /// Component-wise sum.
    #[must_use]
    pub fn plus(&self, other: &EnergyBreakdown) -> EnergyBreakdown {
        EnergyBreakdown {
            dram_pj: self.dram_pj + other.dram_pj,
            l2_noc_pj: self.l2_noc_pj + other.l2_noc_pj,
            pe_pj: self.pe_pj + other.pe_pj,
        }
    }

    /// Each component divided by `base`'s total — the normalized stacked
    /// bars of Figure 9.
    #[must_use]
    pub fn normalized_to(&self, base: &EnergyBreakdown) -> EnergyBreakdown {
        let t = base.total_pj();
        EnergyBreakdown {
            dram_pj: self.dram_pj / t,
            l2_noc_pj: self.l2_noc_pj / t,
            pe_pj: self.pe_pj / t,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sram_energy_matches_paper_calibration_points() {
        let e = EnergyModel::default();
        assert!((e.sram_access_pj(512, 8) - 0.17).abs() < 0.02);
        assert!((e.sram_access_pj(65536, 16) - 2.5).abs() < 0.3);
    }

    #[test]
    fn sram_energy_monotone_in_capacity_and_width() {
        let e = EnergyModel::default();
        assert!(e.sram_access_pj(1024, 16) > e.sram_access_pj(256, 16));
        assert!(e.sram_access_pj(1024, 32) > e.sram_access_pj(1024, 16));
        assert!(e.sram_access_pj(0, 8) > 0.0); // clamped, never zero/NaN
    }

    #[test]
    fn paper_table_lookup_vs_multiply_tradeoff() {
        // §VII: replacing an 8-bit multiply (0.1 pJ) with a 512-entry code
        // book lookup (0.17 pJ) would *increase* energy; same at 16 bit
        // (0.4 vs 2.5). This ordering is why UCNN reuses compound
        // expressions instead of memoizing scalar products in SRAM.
        let e = EnergyModel::default();
        assert!(e.sram_access_pj(512, 8) > e.mult_pj(8));
        assert!(e.sram_access_pj(65536, 16) > e.mult_pj(16));
    }

    #[test]
    fn precision_selection() {
        let e = EnergyModel::default();
        assert_eq!(e.mult_pj(8), 0.1);
        assert_eq!(e.mult_pj(16), 0.4);
        assert_eq!(e.mult_pj(12), 0.4); // widened operands use 16-bit rate
        assert_eq!(e.add_pj(24), e.add32_pj);
    }

    #[test]
    fn breakdown_arithmetic() {
        let a = EnergyBreakdown {
            dram_pj: 10.0,
            l2_noc_pj: 5.0,
            pe_pj: 5.0,
        };
        let b = EnergyBreakdown {
            dram_pj: 10.0,
            l2_noc_pj: 0.0,
            pe_pj: 0.0,
        };
        assert_eq!(a.total_pj(), 20.0);
        assert_eq!(a.plus(&b).total_pj(), 30.0);
        let n = b.normalized_to(&a);
        assert!((n.dram_pj - 0.5).abs() < 1e-12);
        assert!((n.total_pj() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn dram_dominates_sram_per_bit() {
        // The dataflow design rationale (§V-A): DRAM is the energy
        // bottleneck — per bit it must far exceed even the L2.
        let e = EnergyModel::default();
        let l2_per_bit = e.sram_access_pj(256 * 1024, 128) / 128.0;
        assert!(e.dram_pj_per_bit > 10.0 * l2_per_bit);
    }
}
