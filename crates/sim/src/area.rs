//! PE area model (mm² at 32 nm) — the stand-in for the paper's RTL
//! synthesis, reproducing Table III.
//!
//! The model is component-based: SRAM areas follow `a · bytes^0.51` with
//! per-buffer-type constants, and logic areas are per-unit constants. The
//! constants are fit to the paper's Table III data points (DCNN `VK = 2` and
//! UCNN `G = 2, U = 17`, both 16-bit, 32 nm, 1 GHz), then *computed* — not
//! copied — for every other configuration, so ablations (different `U`, `G`,
//! `VW`) produce meaningful areas. Fit error on the published totals is
//! under 7 %.

use crate::config::{ArchConfig, ArchKind};

/// SRAM capacity exponent (fit to the paper's input-buffer pair).
const SRAM_EXP: f64 = 0.51;
/// Input-buffer SRAM constant: 0.00135 mm² at 144 B (DCNN VK=2, Ct=8).
const A_INPUT: f64 = 0.00135 / 12.652; // 144^0.51 ≈ 12.652
/// Weight-buffer SRAM constant: 0.00384 mm² at 288 B (VK=2 × 72 × 2 B).
const A_WEIGHT: f64 = 0.00384 / 17.945; // 288^0.51 ≈ 17.945
/// Indirection-table SRAM constant: 0.00100 mm² at 232 B (Table II, U=17).
const A_TABLE: f64 = 0.00100 / 16.114; // 232^0.51 ≈ 16.114
/// Partial-sum buffer: fixed in both designs (same capacity/organization).
const PSUM_AREA: f64 = 0.00577;
/// One 16-bit multiplier.
const MULT_AREA: f64 = 0.00045;
/// One accumulator register + adder (the ①/②/③ units of Figure 6).
const ACC_AREA: f64 = 0.00047;
/// One dense MAC lane (multiplier + accumulate) for DCNN.
const DCNN_LANE_AREA: f64 = 0.00060;
/// Baseline PE control.
const CONTROL_BASE: f64 = 0.00109;
/// Extra control per UCNN filter lane (table walk, skip logic).
const CONTROL_PER_G: f64 = 0.00031;

/// Streaming table-buffer capacity per Table II: `|iiT| + |wiT| + |F|`
/// bytes held at the PE for a given unique-weight budget.
fn l1_table_bytes(u: usize) -> usize {
    match u {
        0..=8 => 129,
        9..=32 => 232,
        _ => 652,
    }
}

/// Per-component PE area in mm², mirroring the rows of Table III.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PeArea {
    /// L1 input buffer.
    pub input_buffer: f64,
    /// Input/weight indirection tables (UCNN only; includes the unique
    /// weight buffer `F`).
    pub indirection_table: f64,
    /// Dense weight buffer (DCNN only).
    pub weight_buffer: f64,
    /// Partial-sum buffer.
    pub psum_buffer: f64,
    /// Multipliers and accumulators.
    pub arithmetic: f64,
    /// Control logic.
    pub control: f64,
}

impl PeArea {
    /// Total PE area (mm²).
    #[must_use]
    pub fn total(&self) -> f64 {
        self.input_buffer
            + self.indirection_table
            + self.weight_buffer
            + self.psum_buffer
            + self.arithmetic
            + self.control
    }

    /// Relative overhead of `self` versus a baseline PE.
    #[must_use]
    pub fn overhead_vs(&self, base: &PeArea) -> f64 {
        self.total() / base.total() - 1.0
    }
}

fn sram_area(constant: f64, bytes: usize) -> f64 {
    constant * (bytes.max(1) as f64).powf(SRAM_EXP)
}

/// Area of a DCNN/DCNN_sp PE with `vk` dense lanes at the given weight
/// precision.
#[must_use]
pub fn dcnn_pe_area(vk: usize, weight_bits: u32, ct: usize, rs: usize) -> PeArea {
    let bytes_per_weight = f64::from(weight_bits) / 8.0;
    let weight_bytes = (vk as f64 * (ct * rs) as f64 * bytes_per_weight) as usize;
    let input_bytes = ((ct * rs) as f64 * bytes_per_weight) as usize;
    PeArea {
        input_buffer: sram_area(A_INPUT, input_bytes),
        indirection_table: 0.0,
        weight_buffer: sram_area(A_WEIGHT, weight_bytes),
        psum_buffer: PSUM_AREA,
        arithmetic: vk as f64 * DCNN_LANE_AREA,
        control: CONTROL_BASE,
    }
}

/// Area of a UCNN PE with `g` filters per table, `vw` spatial lanes, and a
/// `u`-entry unique-weight buffer.
///
/// The input buffer holds `Ct·S·(VW + R)` activations (§IV-D); the
/// indirection storage holds one tile of `iiT`/`wiT` entries plus the `F`
/// buffer of `u` weights. Arithmetic follows Figure 6: per lane one (4-bit
/// wider) multiplier, the group accumulator ②, `G` output registers ① and
/// `G − 1` sub-group registers ③.
#[must_use]
pub fn ucnn_pe_area(
    g: usize,
    vw: usize,
    u: usize,
    weight_bits: u32,
    ct: usize,
    r: usize,
    s: usize,
) -> PeArea {
    let bytes_per_act = f64::from(weight_bits) / 8.0;
    let input_bytes = (ct as f64 * s as f64 * (vw + r) as f64 * bytes_per_act) as usize;
    let table_bytes = l1_table_bytes(u);
    // Wider multiplier: one operand grows by log2(group cap) = 4 bits.
    let mult = MULT_AREA * (f64::from(weight_bits + 4) / f64::from(weight_bits));
    let arithmetic = vw as f64 * (mult + ACC_AREA * (1 + g + (g - 1)) as f64);
    PeArea {
        input_buffer: sram_area(A_INPUT, input_bytes),
        indirection_table: sram_area(A_TABLE, table_bytes),
        weight_buffer: 0.0,
        psum_buffer: PSUM_AREA,
        arithmetic,
        control: CONTROL_BASE + CONTROL_PER_G * g as f64,
    }
}

/// Area of a PE for an [`ArchConfig`] design point (per-PE; multiply by
/// `config.pes` for the array).
#[must_use]
pub fn pe_area(config: &ArchConfig, u: usize) -> PeArea {
    match config.kind {
        ArchKind::Dcnn | ArchKind::DcnnSp => {
            dcnn_pe_area(config.vk, config.weight_bits, config.ct, 9)
        }
        ArchKind::Ucnn => ucnn_pe_area(config.g, config.vw, u, config.weight_bits, config.ct, 3, 3),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table III: DCNN `VK = 2` component areas (16-bit, Ct = 8, 3×3).
    #[test]
    fn table3_dcnn_vk2_components() {
        let a = dcnn_pe_area(2, 16, 8, 9);
        assert!(
            (a.input_buffer - 0.00135).abs() < 0.0002,
            "{}",
            a.input_buffer
        );
        assert!(
            (a.weight_buffer - 0.00384).abs() < 0.0004,
            "{}",
            a.weight_buffer
        );
        assert!((a.psum_buffer - 0.00577).abs() < 1e-9);
        assert!((a.arithmetic - 0.00120).abs() < 0.0002);
        assert!((a.control - 0.00109).abs() < 1e-9);
        assert!((a.total() - 0.01325).abs() < 0.001, "total {}", a.total());
    }

    /// Table III: UCNN `G = 2, U = 17` adds ≈17 % over DCNN `VK = 2`.
    #[test]
    fn table3_ucnn_u17_overhead_about_17_percent() {
        let dcnn = dcnn_pe_area(2, 16, 8, 9);
        let ucnn = ucnn_pe_area(2, 1, 17, 16, 64, 3, 3);
        let overhead = ucnn.overhead_vs(&dcnn);
        assert!(
            (0.10..=0.24).contains(&overhead),
            "overhead = {overhead:.3} (paper: 0.17)"
        );
    }

    /// §VI-E: provisioning for 256 weights raises overhead to ≈24 %.
    #[test]
    fn table3_ucnn_u256_overhead_about_24_percent() {
        let dcnn = dcnn_pe_area(2, 16, 8, 9);
        let ucnn = ucnn_pe_area(1, 2, 256, 16, 64, 3, 3);
        let overhead = ucnn.overhead_vs(&dcnn);
        assert!(
            (0.17..=0.32).contains(&overhead),
            "overhead = {overhead:.3} (paper: 0.24)"
        );
        // And it must exceed the U = 17 overhead.
        let u17 = ucnn_pe_area(2, 1, 17, 16, 64, 3, 3);
        assert!(ucnn.total() > u17.total());
    }

    #[test]
    fn ucnn_trades_weight_buffer_for_tables() {
        let ucnn = ucnn_pe_area(2, 1, 17, 16, 64, 3, 3);
        assert_eq!(ucnn.weight_buffer, 0.0);
        assert!(ucnn.indirection_table > 0.0);
        let dcnn = dcnn_pe_area(2, 16, 8, 9);
        assert_eq!(dcnn.indirection_table, 0.0);
        assert!(dcnn.weight_buffer > 0.0);
    }

    #[test]
    fn area_grows_with_vectorization() {
        let narrow = ucnn_pe_area(2, 1, 17, 16, 64, 3, 3);
        let wide = ucnn_pe_area(2, 4, 17, 16, 64, 3, 3);
        assert!(wide.total() > narrow.total());
        assert!(wide.input_buffer > narrow.input_buffer);
        assert!(wide.arithmetic > narrow.arithmetic);
    }

    #[test]
    fn pe_area_dispatches_on_kind() {
        let d = pe_area(&ArchConfig::dcnn(16), 17);
        assert!(d.weight_buffer > 0.0);
        let u = pe_area(&ArchConfig::ucnn(17, 16), 17);
        assert!(u.indirection_table > 0.0);
    }
}
