//! Chip-level cycle and energy model (paper §V, §VI): 32 PEs fed by a
//! shared L2 over multicast buses, with the Figure 8 dataflow —
//! weight-stationary at the L2, output-stationary at the PEs, PEs working on
//! columns of input with halos.
//!
//! ## Event model (per layer)
//!
//! **DRAM** — weights are always read once per layer (dense for DCNN,
//! RLE-compressed for DCNN_sp, indirection tables for UCNN). Activations
//! touch DRAM only when a layer's input or output does not fit the L2
//! activation region (§V-A: "we store all input activations in the L2"
//! whenever possible).
//!
//! **L2 + NoC** — weights stream L2→PE once (multicast across the PEs
//! sharing a filter); each input is re-read once per `Kc`-size filter chunk
//! and once per overlapping column halo (factor `min(R, W')`); outputs are
//! written once. The NoC charges a per-bit transfer cost plus a static
//! per-cycle cost (low-swing differential wires, §VI-A).
//!
//! **PE** — per-event L1/arithmetic counts:
//!
//! * DCNN: one weight-buffer read and one MAC per dense MAC; input reads
//!   amortized across `VK` lanes; DCNN_sp gates the arithmetic (not the
//!   buffer reads) when either operand is zero.
//! * UCNN: per stream entry one `iiT` read (amortized across `VW` lanes),
//!   `VW` banked input reads and `VW` accumulator adds; one weight-buffer
//!   read per activation group; one multiply per (chunked) group closure.
//!   Cycles add table bubbles and multiplier stalls, and the per-PE
//!   makespan accounts for load imbalance across filter groups.

use ucnn_core::compile::{compile_layer_sampled, LayerPlan};
use ucnn_core::encoding::rle_bits_capped;
use ucnn_model::ConvLayer;
use ucnn_tensor::Tensor4;

use crate::config::{ArchConfig, ArchKind};
use crate::energy::{EnergyBreakdown, EnergyModel};

/// Per-layer simulation result.
#[derive(Clone, Debug, PartialEq)]
pub struct LayerReport {
    /// Layer name.
    pub layer: String,
    /// Design-point name.
    pub arch: String,
    /// Cycles to completion (load-balanced makespan across PEs).
    pub cycles: f64,
    /// Lower-bound cycles: data entries only, perfectly balanced (no
    /// bubbles, stalls or imbalance) — the "optimistic" model of §VI-C.
    pub ideal_cycles: f64,
    /// Energy broken down as in Figure 9.
    pub energy: EnergyBreakdown,
    /// DRAM bits moved for weights/tables.
    pub dram_weight_bits: f64,
    /// DRAM bits moved for activations (0 when everything fits on chip).
    pub dram_act_bits: f64,
    /// Dense MAC count of the layer.
    pub macs: f64,
    /// Weight-model storage bits (the Figure 13 numerator).
    pub model_bits: f64,
}

impl LayerReport {
    /// Model size in bits per dense weight.
    #[must_use]
    pub fn bits_per_weight(&self, dense_weights: usize) -> f64 {
        self.model_bits / dense_weights as f64
    }
}

/// Sums a set of layer reports into a network-level report.
#[must_use]
pub fn sum_reports(arch: &str, reports: &[LayerReport]) -> LayerReport {
    let mut total = LayerReport {
        layer: "total".to_string(),
        arch: arch.to_string(),
        cycles: 0.0,
        ideal_cycles: 0.0,
        energy: EnergyBreakdown::default(),
        dram_weight_bits: 0.0,
        dram_act_bits: 0.0,
        macs: 0.0,
        model_bits: 0.0,
    };
    for r in reports {
        total.cycles += r.cycles;
        total.ideal_cycles += r.ideal_cycles;
        total.energy = total.energy.plus(&r.energy);
        total.dram_weight_bits += r.dram_weight_bits;
        total.dram_act_bits += r.dram_act_bits;
        total.macs += r.macs;
        total.model_bits += r.model_bits;
    }
    total
}

/// The chip-level simulator for one design point.
#[derive(Clone, Debug)]
pub struct Simulator {
    arch: ArchConfig,
    energy: EnergyModel,
    sample_units: usize,
}

impl Simulator {
    /// Creates a simulator with the default energy model and exact (full)
    /// compilation.
    #[must_use]
    pub fn new(arch: ArchConfig) -> Self {
        Self {
            arch,
            energy: EnergyModel::default(),
            sample_units: usize::MAX,
        }
    }

    /// Limits UCNN compilation to `units` filter groups per layer,
    /// extrapolating totals — used by the sweep harness on large networks.
    #[must_use]
    pub fn with_sampling(mut self, units: usize) -> Self {
        self.sample_units = units.max(1);
        self
    }

    /// Replaces the energy model (sensitivity studies).
    #[must_use]
    pub fn with_energy_model(mut self, energy: EnergyModel) -> Self {
        self.energy = energy;
        self
    }

    /// The design point being simulated.
    #[must_use]
    pub fn arch(&self) -> &ArchConfig {
        &self.arch
    }

    /// Simulates one layer given its weights and the input activation
    /// density (`0.35` is the paper's default).
    ///
    /// # Panics
    ///
    /// Panics if `weights` shape disagrees with `layer`.
    #[must_use]
    pub fn simulate_layer(
        &self,
        layer: &ConvLayer,
        weights: &Tensor4<i16>,
        act_density: f64,
    ) -> LayerReport {
        let geom = layer.geom();
        assert_eq!(weights.k(), geom.k(), "filter count mismatch");
        assert_eq!(weights.c(), geom.c(), "filter channel mismatch");

        match self.arch.kind {
            ArchKind::Dcnn | ArchKind::DcnnSp => self.simulate_dense(layer, weights, act_density),
            ArchKind::Ucnn => self.simulate_ucnn(layer, weights, act_density),
        }
    }

    /// Common traffic quantities shared by both PE families.
    fn traffic(&self, layer: &ConvLayer, weight_storage_bits: f64) -> Traffic {
        let a = &self.arch;
        let geom = layer.geom();
        let input_bits = layer.total_input_count() as f64 * f64::from(a.act_bits);
        let output_bits = layer.total_output_count() as f64 * f64::from(a.act_bits);
        let input_fits = input_bits / 8.0 <= a.l2_act_bytes as f64;
        let output_fits = output_bits / 8.0 <= a.l2_act_bytes as f64;

        // Kc: how many filters' worth of (stored) weights fit the L2 weight
        // region (Figure 8 step A).
        let bits_per_filter = weight_storage_bits / geom.k() as f64;
        let kc = ((a.l2_weight_bytes as f64 * 8.0 / bits_per_filter).floor() as usize)
            .clamp(1, geom.k());
        let k_chunks = geom.k().div_ceil(kc) as f64;

        let halo = geom.r().min(geom.out_w()) as f64;
        let l2_weight_read_bits = weight_storage_bits;
        let l2_input_read_bits = input_bits * halo * k_chunks;
        let l2_output_write_bits = output_bits;

        let dram_act_bits =
            if input_fits { 0.0 } else { input_bits } + if output_fits { 0.0 } else { output_bits };

        Traffic {
            l2_weight_read_bits,
            l2_input_read_bits,
            l2_output_write_bits,
            dram_act_bits,
        }
    }

    /// Folds traffic and PE events into the Figure 9 energy breakdown.
    fn energy_of(
        &self,
        t: &Traffic,
        pe: &PeEvents,
        dram_weight_bits: f64,
        cycles: f64,
    ) -> EnergyBreakdown {
        let a = &self.arch;
        let e = &self.energy;

        let dram_pj = e.dram_pj(dram_weight_bits + t.dram_act_bits);

        let l2_bits = t.l2_weight_read_bits + t.l2_input_read_bits + t.l2_output_write_bits;
        let l2_cap = a.l2_act_bytes + a.l2_weight_bytes;
        let l2_pj_per_bit = e.sram_access_pj(l2_cap, 128) / 128.0;
        let noc_pj = l2_bits * e.noc_pj_per_bit + cycles * e.noc_static_pj_per_cycle;
        let l2_noc_pj = l2_bits * l2_pj_per_bit + noc_pj;

        let input_rd = e.sram_access_pj(a.l1_input_bytes, a.act_bits);
        let weight_rd = e.sram_access_pj(a.l1_weight_bytes, a.weight_bits);
        let psum_rw = e.sram_access_pj(a.l1_psum_bytes, 32);
        let pe_pj = pe.l1_input_reads * input_rd
            + pe.l1_input_writes * input_rd
            + pe.l1_weight_reads * weight_rd
            + pe.l1_weight_writes * weight_rd
            + pe.l1_table_reads * weight_rd
            + pe.psum_accesses * psum_rw
            + pe.mults * e.mult_pj(a.weight_bits)
            + pe.adds * e.add_pj(a.act_bits)
            + pe.wide_adds * e.add_pj(32);

        EnergyBreakdown {
            dram_pj,
            l2_noc_pj,
            pe_pj,
        }
    }

    fn simulate_dense(
        &self,
        layer: &ConvLayer,
        weights: &Tensor4<i16>,
        act_density: f64,
    ) -> LayerReport {
        let a = &self.arch;
        let geom = layer.geom();
        let macs = layer.total_macs() as f64;
        let outputs = layer.total_output_count() as f64;
        let dense_bits = weights.len() as f64 * f64::from(a.weight_bits);
        let weight_density = weights.density();

        let (storage_bits, model_bits) = match a.kind {
            ArchKind::DcnnSp => {
                let bits = rle_bits_capped(weights.as_slice(), a.weight_bits, 5) as f64;
                (bits, bits)
            }
            _ => (dense_bits, dense_bits),
        };

        let t = self.traffic(layer, storage_bits);

        // Cycles: uniform units of (column × VK filters), dense walk.
        let units = geom.out_w() as f64 * (geom.k() as f64 / a.vk as f64).ceil();
        let unit_cost = (geom.filter_size() * geom.out_h()) as f64;
        let rounds = (units / a.pes as f64).ceil();
        let cycles = rounds * unit_cost;

        // Arithmetic gating for DCNN_sp (energy only; §VI-A).
        let gate = match a.kind {
            ArchKind::DcnnSp => weight_density * act_density,
            _ => 1.0,
        };

        let ct_passes = (geom.c() as f64 / a.ct as f64).ceil();
        let pe = PeEvents {
            l1_input_reads: macs / a.vk as f64,
            l1_input_writes: t.l2_input_read_bits / f64::from(a.act_bits),
            l1_weight_reads: macs,
            l1_weight_writes: t.l2_weight_read_bits / f64::from(a.weight_bits),
            l1_table_reads: 0.0,
            psum_accesses: 2.0 * outputs * ct_passes,
            mults: macs * gate,
            adds: 0.0,
            wide_adds: macs * gate,
        };

        let energy = self.energy_of(&t, &pe, storage_bits, cycles);
        LayerReport {
            layer: layer.name().to_string(),
            arch: a.name.clone(),
            cycles,
            ideal_cycles: cycles,
            energy,
            dram_weight_bits: storage_bits,
            dram_act_bits: t.dram_act_bits,
            macs,
            model_bits,
        }
    }

    fn simulate_ucnn(
        &self,
        layer: &ConvLayer,
        weights: &Tensor4<i16>,
        _act_density: f64,
    ) -> LayerReport {
        let a = &self.arch;
        let geom = layer.geom();
        let macs = layer.total_macs() as f64;
        let outputs = layer.total_output_count() as f64;

        // Channel tile: grow Ct for small filters (1×1 layers, FC) so tiles
        // stay ~512 positions — tiny tiles starve the sub-activation groups
        // and explode skip entries, which no real deployment would accept.
        let rs = geom.r() * geom.s();
        let mut cfg = a.ucnn_config();
        cfg.ct = cfg.ct.max((512 / rs).max(1));
        let plan: LayerPlan = compile_layer_sampled(weights, &cfg, self.sample_units);
        let totals = plan.totals();
        let model_bits = plan.model_bits() as f64;

        let t = self.traffic(layer, model_bits);

        // Fully connected layers have a single output position, so spatial
        // vectorization has nothing to feed the VW lanes; the PE instead
        // runs VW filter groups concurrently, one per lane (§IV-E:
        // "convolutions where input buffer slide reuse is disabled").
        let fc_mode = layer.is_fc();
        let vw = a.vw as f64;
        // Walks per (filter-group, tile): one per output position of its
        // VW-wide column group.
        let col_groups = geom.out_w().div_ceil(a.vw) as f64;
        let walks = if fc_mode {
            1.0
        } else {
            col_groups * geom.out_h() as f64
        };
        // Per-lane event expansion: in spatial mode every lane replays the
        // walk on its own column (sharing the iiT read); in FC mode each
        // lane owns a different filter group, so totals already count each
        // event once.
        let lane = if fc_mode { 1.0 } else { vw };

        let pe = PeEvents {
            l1_input_reads: totals.entries as f64 * walks * lane,
            l1_input_writes: t.l2_input_read_bits / f64::from(a.act_bits),
            l1_weight_reads: totals.weight_buffer_reads as f64 * walks,
            l1_weight_writes: t.l2_weight_read_bits / f64::from(a.weight_bits),
            // One iiT read per walk serves all VW lanes (spatial mode); in
            // FC mode each lane walks its own table, counted once in totals.
            l1_table_reads: (totals.entries + totals.bubbles) as f64 * walks,
            psum_accesses: 2.0 * outputs * (geom.c() as f64 / cfg.ct as f64).ceil(),
            mults: totals.multiplies as f64 * walks * lane,
            adds: totals.adds as f64 * walks * lane,
            wide_adds: totals.multiplies as f64 * walks * lane, // MAC accumulate
        };

        // Cycles: per-unit cost = that filter group's walk cycles × H'.
        // Units repeat per column group; distribute LPT over the PEs. In FC
        // mode VW filter groups run concurrently per PE, so the effective
        // unit count shrinks by VW.
        let unit_costs: Vec<f64> = plan
            .units()
            .iter()
            .map(|u| u.stats.walk_cycles() as f64 * geom.out_h() as f64)
            .collect();
        let n_fg = geom.k().div_ceil(a.g);
        let (eff_fg, copies) = if fc_mode {
            (n_fg.div_ceil(a.vw), 1)
        } else {
            (n_fg, col_groups as usize)
        };
        let cycles = lpt_makespan(&unit_costs, eff_fg, copies, a.pes);
        let ideal_cycles = if fc_mode {
            totals.entries as f64 / (vw * a.pes as f64)
        } else {
            totals.entries as f64 * walks / a.pes as f64
        };

        let energy = self.energy_of(&t, &pe, model_bits, cycles);
        LayerReport {
            layer: layer.name().to_string(),
            arch: a.name.clone(),
            cycles,
            ideal_cycles,
            energy,
            dram_weight_bits: model_bits,
            dram_act_bits: t.dram_act_bits,
            macs,
            model_bits,
        }
    }
}

/// L2/DRAM traffic quantities.
struct Traffic {
    l2_weight_read_bits: f64,
    l2_input_read_bits: f64,
    l2_output_write_bits: f64,
    dram_act_bits: f64,
}

/// PE-local event counts (fractional: sampled plans extrapolate).
struct PeEvents {
    l1_input_reads: f64,
    l1_input_writes: f64,
    l1_weight_reads: f64,
    l1_weight_writes: f64,
    l1_table_reads: f64,
    psum_accesses: f64,
    mults: f64,
    adds: f64,
    wide_adds: f64,
}

/// Longest-processing-time makespan of `n_fg` filter-group costs (cycled
/// from the possibly sampled `unit_costs`), each replicated `copies` times
/// (one per column group), across `pes` processors.
fn lpt_makespan(unit_costs: &[f64], n_fg: usize, copies: usize, pes: usize) -> f64 {
    if unit_costs.is_empty() || n_fg == 0 || copies == 0 {
        return 0.0;
    }
    // Expand per-filter-group costs (cycling over the compiled sample).
    let mut units: Vec<f64> = (0..n_fg)
        .map(|i| unit_costs[i % unit_costs.len()])
        .collect();
    units.sort_unstable_by(|x, y| y.partial_cmp(x).unwrap());
    // Each fg repeats `copies` times with identical cost; spreading copies
    // round-robin keeps loads near-equal, so assign in bulk:
    let mut loads = vec![0.0f64; pes];
    for &cost in &units {
        // `copies` identical units: give each PE floor(copies/pes), then the
        // remainder one-by-one to the least-loaded.
        let per_pe = (copies / pes) as f64 * cost;
        for l in &mut loads {
            *l += per_pe;
        }
        for _ in 0..(copies % pes) {
            let idx = loads
                .iter()
                .enumerate()
                .min_by(|x, y| x.1.partial_cmp(y.1).unwrap())
                .map(|(i, _)| i)
                .unwrap();
            loads[idx] += cost;
        }
    }
    loads.into_iter().fold(0.0f64, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::evaluation_designs;
    use ucnn_model::{networks, QuantScheme, WeightGen};

    fn lenet_conv3_weights(u: usize, density: f64, seed: u64) -> (ConvLayer, Tensor4<i16>) {
        let net = networks::lenet();
        let layer = net.conv_layer("conv3").unwrap();
        let mut wgen = WeightGen::new(QuantScheme::uniform_unique(u), seed).with_density(density);
        let w = wgen.generate(&layer);
        (layer, w)
    }

    #[test]
    fn dense_cycles_are_macs_over_throughput() {
        let (layer, w) = lenet_conv3_weights(17, 0.9, 1);
        let sim = Simulator::new(ArchConfig::dcnn(16));
        let r = sim.simulate_layer(&layer, &w, 0.35);
        // units = 8 columns × 64/8 filters = 64 → 2 rounds of 32 PEs.
        let geom = layer.geom();
        let expected = 2.0 * (geom.filter_size() * geom.out_h()) as f64;
        assert_eq!(r.cycles, expected);
    }

    #[test]
    fn dcnn_sp_saves_energy_not_cycles() {
        let (layer, w) = lenet_conv3_weights(17, 0.5, 2);
        let dcnn = Simulator::new(ArchConfig::dcnn(16)).simulate_layer(&layer, &w, 0.35);
        let sp = Simulator::new(ArchConfig::dcnn_sp(16)).simulate_layer(&layer, &w, 0.35);
        assert_eq!(sp.cycles, dcnn.cycles, "zero gating saves no cycles");
        assert!(sp.energy.total_pj() < dcnn.energy.total_pj());
        assert!(
            sp.dram_weight_bits < dcnn.dram_weight_bits,
            "RLE compression"
        );
    }

    #[test]
    fn ucnn_beats_dcnn_sp_at_16bit() {
        let (layer, w) = lenet_conv3_weights(17, 0.9, 3);
        let sp = Simulator::new(ArchConfig::dcnn_sp(16)).simulate_layer(&layer, &w, 0.35);
        let ucnn = Simulator::new(ArchConfig::ucnn(17, 16)).simulate_layer(&layer, &w, 0.35);
        assert!(
            ucnn.energy.total_pj() < sp.energy.total_pj(),
            "UCNN {:.3e} vs DCNN_sp {:.3e}",
            ucnn.energy.total_pj(),
            sp.energy.total_pj()
        );
    }

    #[test]
    fn ucnn_cycles_track_weight_sparsity() {
        let (layer, w_dense) = lenet_conv3_weights(17, 1.0, 4);
        let (_, w_half) = lenet_conv3_weights(17, 0.5, 4);
        let sim = Simulator::new(ArchConfig::ucnn(64, 16)); // G = 1
        let dense = sim.simulate_layer(&layer, &w_dense, 0.35);
        let half = sim.simulate_layer(&layer, &w_half, 0.35);
        let ratio = half.cycles / dense.cycles;
        assert!((0.4..0.65).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn all_designs_produce_finite_positive_energy() {
        let (layer, w) = lenet_conv3_weights(17, 0.65, 5);
        for design in evaluation_designs(16)
            .into_iter()
            .chain(evaluation_designs(8))
        {
            let r = Simulator::new(design.clone()).simulate_layer(&layer, &w, 0.35);
            assert!(r.cycles > 0.0, "{}", design.name);
            assert!(
                r.energy.total_pj().is_finite() && r.energy.total_pj() > 0.0,
                "{}",
                design.name
            );
            assert!(r.energy.dram_pj > 0.0, "{}", design.name);
        }
    }

    #[test]
    fn sampling_approximates_full_compile() {
        let (layer, w) = lenet_conv3_weights(17, 0.9, 6);
        let full = Simulator::new(ArchConfig::ucnn(17, 16)).simulate_layer(&layer, &w, 0.35);
        let sampled = Simulator::new(ArchConfig::ucnn(17, 16))
            .with_sampling(8)
            .simulate_layer(&layer, &w, 0.35);
        let ratio = sampled.energy.total_pj() / full.energy.total_pj();
        assert!((0.93..1.07).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn fc_layer_simulates() {
        let net = networks::lenet();
        let fc = net.conv_layer("ip1").unwrap();
        let mut wgen = WeightGen::new(QuantScheme::inq(), 7).with_density(0.9);
        let w = wgen.generate(&fc);
        let r = Simulator::new(ArchConfig::ucnn(17, 16)).simulate_layer(&fc, &w, 0.35);
        assert!(r.cycles > 0.0 && r.energy.total_pj() > 0.0);
    }

    #[test]
    fn oversized_activations_hit_dram() {
        // AlexNet conv1 input (227×227×3 @16 bit ≈ 300 KB) exceeds 256 KB.
        let net = networks::alexnet();
        let conv1 = net.conv_layer("conv1").unwrap();
        let mut wgen = WeightGen::new(QuantScheme::inq(), 8).with_density(0.9);
        let w = wgen.generate(&conv1);
        let r = Simulator::new(ArchConfig::dcnn(16)).simulate_layer(&conv1, &w, 0.35);
        assert!(r.dram_act_bits > 0.0);
        // LeNet conv3 (8×8×32) fits easily.
        let (l3, w3) = lenet_conv3_weights(17, 0.9, 9);
        let r3 = Simulator::new(ArchConfig::dcnn(16)).simulate_layer(&l3, &w3, 0.35);
        assert_eq!(r3.dram_act_bits, 0.0);
    }

    #[test]
    fn lpt_makespan_basics() {
        // 4 fg costs × 1 copy on 2 PEs: {8,7,3,2} → LPT gives max(8+2, 7+3) = 10.
        assert_eq!(lpt_makespan(&[8.0, 7.0, 3.0, 2.0], 4, 1, 2), 10.0);
        // Uniform units divide evenly.
        assert_eq!(lpt_makespan(&[5.0], 4, 8, 16), 10.0);
        assert_eq!(lpt_makespan(&[], 0, 1, 4), 0.0);
    }

    #[test]
    fn report_sum_accumulates() {
        let (layer, w) = lenet_conv3_weights(17, 0.9, 10);
        let sim = Simulator::new(ArchConfig::dcnn(16));
        let r = sim.simulate_layer(&layer, &w, 0.35);
        let total = sum_reports("DCNN", &[r.clone(), r.clone()]);
        assert_eq!(total.cycles, 2.0 * r.cycles);
        assert!((total.energy.total_pj() - 2.0 * r.energy.total_pj()).abs() < 1e-6);
    }
}
