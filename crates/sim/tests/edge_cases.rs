//! Edge-case coverage for the accelerator simulator: single-lane chips,
//! bank-conflict behavior at saturated vector widths, and zero-work tiles.
//!
//! These are the degenerate corners the chip/lane/banking models must not
//! fall over in: a chip provisioned down to one PE, a banked input buffer
//! with more lanes than filter rows (or exactly one bank), and streams that
//! retain no entries at all because every weight is zero.

use ucnn_core::hierarchy::GroupStream;
use ucnn_model::{networks, QuantScheme, WeightGen};
use ucnn_sim::banking::BankedInputBuffer;
use ucnn_sim::chip::Simulator;
use ucnn_sim::config::ArchConfig;
use ucnn_sim::lane::{run_lane, LaneConfig};
use ucnn_tensor::Tensor4;

// ---------------------------------------------------------------------------
// Single-lane chips.
// ---------------------------------------------------------------------------

#[test]
fn single_pe_chip_simulates_and_is_never_faster_than_full_chip() {
    // A chip scaled down to one PE must still produce a coherent report —
    // and take at least as many cycles as the 32-PE design on the same
    // layer (work conservation; energy totals stay positive).
    let net = networks::tiny();
    let layer = &net.conv_layers()[0];
    let mut gen = WeightGen::new(QuantScheme::inq(), 7).with_density(0.9);
    let weights = gen.generate(layer);

    let mut single = ArchConfig::ucnn(17, 16);
    single.pes = 1;
    single.name = "UCNN U17 single-PE".to_string();
    let full = ArchConfig::ucnn(17, 16);

    let one = Simulator::new(single).simulate_layer(layer, &weights, 0.35);
    let many = Simulator::new(full).simulate_layer(layer, &weights, 0.35);

    assert!(one.cycles > 0.0 && one.ideal_cycles > 0.0);
    assert!(one.ideal_cycles <= one.cycles * (1.0 + 1e-9));
    assert!(one.energy.total_pj() > 0.0);
    assert!(
        one.cycles >= many.cycles,
        "1 PE ({}) beat 32 PEs ({})",
        one.cycles,
        many.cycles
    );
}

#[test]
fn single_lane_pe_with_no_queue_is_exact_and_slowest() {
    // The most starved lane provisioning — one multiply per cycle, zero
    // dispatch queue — must still be arithmetically exact, and any added
    // provisioning can only reduce cycles.
    let mut gen = WeightGen::new(QuantScheme::inq(), 11).with_density(0.9);
    let w = gen.generate_dims(2, 16, 3, 3);
    let slices: Vec<&[i16]> = vec![w.filter(0), w.filter(1)];
    let stream = GroupStream::build(&slices);
    let acts: Vec<i16> = (0..stream.tile_len())
        .map(|i| (i % 23) as i16 - 11)
        .collect();
    let dense = |f: &[i16]| -> i32 {
        f.iter()
            .zip(&acts)
            .map(|(&w, &x)| i32::from(w) * i32::from(x))
            .sum()
    };

    let starved = run_lane(
        &stream,
        &acts,
        &LaneConfig {
            group_cap: 16,
            mult_throughput: 1,
            queue_depth: 0,
        },
    );
    assert_eq!(
        starved.outputs,
        vec![dense(w.filter(0)), dense(w.filter(1))]
    );

    for (throughput, depth) in [(1usize, 2usize), (2, 0), (2, 4), (4, 8)] {
        let better = run_lane(
            &stream,
            &acts,
            &LaneConfig {
                group_cap: 16,
                mult_throughput: throughput,
                queue_depth: depth,
            },
        );
        assert_eq!(better.outputs, starved.outputs);
        assert!(
            better.cycles <= starved.cycles,
            "throughput {throughput} depth {depth}: {} > {}",
            better.cycles,
            starved.cycles
        );
        assert!(better.stall_cycles <= starved.stall_cycles);
    }
}

// ---------------------------------------------------------------------------
// Bank-conflict saturation.
// ---------------------------------------------------------------------------

#[test]
fn banking_stays_conflict_free_when_vw_exceeds_r() {
    // Saturated spatial vectorization: more lanes than filter rows (VW > R,
    // up to VW = 8 against R = 1). The §IV-D fill strategy must still give
    // every vector slot of one indirection a distinct bank.
    for r in 1..=3usize {
        for vw in [4usize, 8] {
            let buf = BankedInputBuffer::new(r, 3, 4, vw);
            for rr in 0..r {
                for s in 0..3 {
                    for c in 0..4 {
                        let banks: std::collections::HashSet<usize> =
                            (0..vw).map(|v| buf.bank(rr, s, c, v)).collect();
                        assert_eq!(banks.len(), vw, "collision at R={r} VW={vw}");
                    }
                }
            }
            // Every slot must stay addressable within the reported bank size.
            for rr in 0..r {
                for s in 0..3 {
                    for c in 0..4 {
                        for v in 0..vw {
                            assert!(buf.addr(rr, s, c, v) < buf.addresses_per_bank());
                        }
                    }
                }
            }
            assert!(buf.storage_overhead() < 0.5, "R={r} VW={vw}");
        }
    }
}

#[test]
fn single_bank_buffer_degenerates_cleanly() {
    // VW = 1: one bank, no vectorization. Everything lands in bank 0 with
    // injective addresses and zero storage overhead.
    let buf = BankedInputBuffer::new(3, 3, 8, 1);
    let mut seen = std::collections::HashSet::new();
    for r in 0..3 {
        for s in 0..3 {
            for c in 0..8 {
                let slot = buf.slot(r, s, c, 0);
                assert_eq!(slot.bank, 0);
                assert!(
                    seen.insert(slot.addr),
                    "duplicate address {} at ({r},{s},{c})",
                    slot.addr
                );
            }
        }
    }
    assert_eq!(buf.storage_overhead(), 0.0);
}

// ---------------------------------------------------------------------------
// Zero-work tiles.
// ---------------------------------------------------------------------------

#[test]
fn all_zero_stream_runs_in_zero_cycles() {
    // Every weight zero → the union rule drops every position: the lane
    // has nothing to read, nothing to multiply, and outputs exact zeros.
    let z = [0i16; 12];
    let stream = GroupStream::build(&[&z, &z]);
    assert_eq!(stream.entry_count(), 0);
    let acts = [7i16; 12];
    let trace = run_lane(&stream, &acts, &LaneConfig::default());
    assert_eq!(trace.cycles, 0);
    assert_eq!(trace.multiplies, 0);
    assert_eq!(trace.adds, 0);
    assert_eq!(trace.stall_cycles, 0);
    assert_eq!(trace.outputs, vec![0, 0]);
}

#[test]
fn chip_simulation_survives_all_zero_weights() {
    // A layer whose weights are entirely zero is all zero-work tiles: the
    // UCNN walk retains no entries, so PE data cycles collapse while the
    // report stays finite and non-negative everywhere.
    let net = networks::tiny();
    let layer = &net.conv_layers()[0];
    let geom = layer.geom();
    let zeros = Tensor4::from_fn(geom.k(), geom.c(), geom.r(), geom.s(), |_, _, _, _| 0i16);

    for arch in [
        ArchConfig::dcnn(16),
        ArchConfig::dcnn_sp(16),
        ArchConfig::ucnn(17, 16),
    ] {
        let name = arch.name.clone();
        let report = Simulator::new(arch).simulate_layer(layer, &zeros, 0.35);
        assert!(report.cycles.is_finite() && report.cycles >= 0.0, "{name}");
        assert!(
            report.ideal_cycles.is_finite() && report.ideal_cycles >= 0.0,
            "{name}"
        );
        assert!(report.energy.total_pj().is_finite(), "{name}");
        assert!(report.energy.total_pj() >= 0.0, "{name}");
        assert!(report.model_bits >= 0.0, "{name}");
    }

    // And a zero-work layer must cost no more than a dense one on UCNN.
    let mut gen = WeightGen::new(QuantScheme::inq(), 3).with_density(0.9);
    let dense_w = gen.generate(layer);
    let zero_rep = Simulator::new(ArchConfig::ucnn(17, 16)).simulate_layer(layer, &zeros, 0.35);
    let dense_rep = Simulator::new(ArchConfig::ucnn(17, 16)).simulate_layer(layer, &dense_w, 0.35);
    assert!(zero_rep.cycles <= dense_rep.cycles);
}
