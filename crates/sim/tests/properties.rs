//! Property-based tests for the simulator: the cycle-accurate lane must be
//! arithmetically exact for arbitrary streams, stalls must be monotone in
//! provisioning, and the chip model must respond monotonically to workload
//! knobs.

use proptest::prelude::*;

use ucnn_core::hierarchy::GroupStream;
use ucnn_model::{networks, QuantScheme, WeightGen};
use ucnn_sim::banking::BankedInputBuffer;
use ucnn_sim::chip::Simulator;
use ucnn_sim::config::ArchConfig;
use ucnn_sim::lane::{run_lane, LaneConfig};

fn lcg_weights(seed: u64, len: usize, g: usize, alphabet: i16) -> Vec<Vec<i16>> {
    let mut state = seed | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as i16).rem_euclid(alphabet) - alphabet / 2
    };
    (0..g).map(|_| (0..len).map(|_| next()).collect()).collect()
}

proptest! {
    /// The lane's outputs equal dense dot products for any stream, any lane
    /// provisioning, any activations — chunking and stalling never change
    /// arithmetic.
    #[test]
    fn lane_outputs_always_exact(
        seed in any::<u64>(),
        g in 1usize..=3,
        len in 4usize..80,
        cap in 2usize..20,
        depth in 0usize..4,
    ) {
        let filters = lcg_weights(seed, len, g, 7);
        prop_assume!(filters.iter().any(|f| f.iter().any(|&w| w != 0)));
        let refs: Vec<&[i16]> = filters.iter().map(Vec::as_slice).collect();
        let stream = GroupStream::build(&refs);
        let acts: Vec<i16> = (0..len).map(|i| ((i * 13 + 5) % 97) as i16 - 48).collect();
        let trace = run_lane(
            &stream,
            &acts,
            &LaneConfig {
                group_cap: cap,
                mult_throughput: 1,
                queue_depth: depth,
            },
        );
        for (fi, f) in filters.iter().enumerate() {
            let dense: i32 = f.iter().zip(&acts).map(|(&w, &x)| i32::from(w) * i32::from(x)).sum();
            prop_assert_eq!(trace.outputs[fi], dense, "filter {}", fi);
        }
        // Cycles are at least the entry count and stalls are the excess.
        prop_assert_eq!(trace.cycles, trace.data_cycles + trace.stall_cycles);
        prop_assert_eq!(trace.data_cycles as usize, stream.entry_count());
    }

    /// More multiplier throughput or deeper queues never increase cycles.
    #[test]
    fn lane_cycles_monotone_in_provisioning(seed in any::<u64>(), len in 8usize..64) {
        let filters = lcg_weights(seed, len, 2, 5);
        prop_assume!(filters.iter().any(|f| f.iter().any(|&w| w != 0)));
        let refs: Vec<&[i16]> = filters.iter().map(Vec::as_slice).collect();
        let stream = GroupStream::build(&refs);
        let acts = vec![1i16; len];
        let cycles = |depth: usize, thr: usize| {
            run_lane(
                &stream,
                &acts,
                &LaneConfig {
                    group_cap: 16,
                    mult_throughput: thr,
                    queue_depth: depth,
                },
            )
            .cycles
        };
        prop_assert!(cycles(1, 1) <= cycles(0, 1));
        prop_assert!(cycles(4, 1) <= cycles(1, 1));
        prop_assert!(cycles(0, 2) <= cycles(0, 1));
    }

    /// Banking (Equations 3/4) is conflict-free for every geometry.
    #[test]
    fn banking_conflict_free(r in 1usize..8, s in 1usize..6, ct in 1usize..32, vw in 1usize..8) {
        let buf = BankedInputBuffer::new(r, s, ct, vw);
        for ri in 0..r {
            for si in 0..s {
                for ci in 0..ct {
                    let mut banks: Vec<usize> = (0..vw).map(|v| buf.bank(ri, si, ci, v)).collect();
                    banks.sort_unstable();
                    banks.dedup();
                    prop_assert_eq!(banks.len(), vw);
                }
            }
        }
        prop_assert!(buf.storage_overhead() < 0.5);
    }

    /// Chip model: UCNN energy decreases (weakly) as weight density falls —
    /// fewer table entries, fewer DRAM bits, fewer adds.
    #[test]
    fn ucnn_energy_monotone_in_density(seed in 0u64..1000) {
        let net = networks::tiny();
        let layer = &net.conv_layers()[1];
        let sim = Simulator::new(ArchConfig::ucnn(17, 16));
        let mut last = f64::INFINITY;
        for density in [0.9, 0.6, 0.3] {
            let mut gen = WeightGen::new(QuantScheme::uniform_unique(17), seed).with_density(density);
            let w = gen.generate(layer);
            let e = sim.simulate_layer(layer, &w, 0.35).energy.total_pj();
            prop_assert!(e <= last * 1.02, "density {density}: {e} vs {last}");
            last = e;
        }
    }

    /// Chip model: every design's report is self-consistent (positive,
    /// finite, components sum to the total).
    #[test]
    fn reports_are_well_formed(seed in 0u64..500, density in 0.2f64..1.0) {
        let net = networks::tiny();
        let layer = &net.conv_layers()[0];
        let mut gen = WeightGen::new(QuantScheme::inq(), seed).with_density(density);
        let w = gen.generate(layer);
        for design in ucnn_sim::config::evaluation_designs(16) {
            let r = Simulator::new(design.clone()).simulate_layer(layer, &w, 0.35);
            prop_assert!(r.cycles > 0.0 && r.cycles.is_finite(), "{}", design.name);
            prop_assert!(r.ideal_cycles <= r.cycles * 1.0001, "{}", design.name);
            let total = r.energy.total_pj();
            prop_assert!(total.is_finite() && total > 0.0, "{}", design.name);
            let sum = r.energy.dram_pj + r.energy.l2_noc_pj + r.energy.pe_pj;
            prop_assert!((sum - total).abs() < 1e-9 * total.max(1.0));
        }
    }
}
