//! Serve-regression suite: short mixed-workload harness runs against the
//! live engine, asserting the invariants production serving depends on —
//! zero lost or duplicated responses under every arrival pattern, bit-exact
//! outputs per model across all registered backends, graceful shedding at
//! queue-full, clean accounting through a shutdown under backpressure, and
//! seed-exact replay of request streams.

use std::sync::Arc;
use std::time::Duration;

use ucnn::core::backend::BackendKind;
use ucnn::core::compile::UcnnConfig;
use ucnn::model::{forward, networks, ActivationGen, NetworkSpec, QuantScheme};
use ucnn::serve::harness::{self, Case, ModelCases, RunConfig};
use ucnn::serve::workload::{Arrival, Mix, RequestSpec, StandardWorkload, Workload};
use ucnn::serve::{Engine, EngineConfig, ModelRegistry};

/// Registers `n` copies of the tiny topology under distinct names with
/// distinct weights and returns verified cases for each.
fn zoo(registry: &Arc<ModelRegistry>, n: usize, seed: u64) -> Vec<ModelCases> {
    let tiny = networks::tiny();
    let mut agen = ActivationGen::new(seed ^ 0xACE);
    (0..n)
        .map(|i| {
            let name = if i == 0 {
                "tiny".to_string()
            } else {
                format!("tiny-{i}")
            };
            let mut spec = NetworkSpec::new(&name);
            for layer in tiny.layers() {
                spec.push(layer.clone());
            }
            let weights =
                forward::generate_network_weights(&spec, QuantScheme::inq(), seed + i as u64, 0.9);
            registry.compile_and_insert(&spec, &weights, &UcnnConfig::with_g(2));
            let cases: Vec<Case> = (0..3)
                .map(|_| {
                    let input = agen.generate_for(&spec.conv_layers()[0]);
                    let expected = forward::dense_forward(&spec, &weights, &input);
                    (input, expected)
                })
                .collect();
            ModelCases { name, cases }
        })
        .collect()
}

/// Hot/cold closed-loop traffic over a multi-model registry must complete
/// every request with bit-exact outputs under **every** registered backend.
#[test]
fn hot_cold_mixed_models_bit_exact_across_all_backends() {
    let registry = Arc::new(ModelRegistry::new());
    let models = zoo(&registry, 3, 0x100);
    let wl = StandardWorkload {
        arrival: Arrival::Closed,
        mix: Mix::HotCold { hot_share: 0.8 },
    };
    for backend in BackendKind::ALL {
        let engine = Engine::start(
            Arc::clone(&registry),
            EngineConfig {
                workers: 2,
                queue_capacity: 32,
                max_batch: 4,
                exec_threads: 1,
                backend,
                ..EngineConfig::default()
            },
        );
        let report = harness::run(
            &engine,
            &models,
            &wl,
            RunConfig {
                requests: 30,
                shards: 3,
                seed: 0x5EED,
                ..RunConfig::default()
            },
        );
        assert_eq!(report.completed, 30, "backend {backend}: lost requests");
        assert_eq!(report.mismatches, 0, "backend {backend}: outputs diverged");
        assert_eq!(report.errors, 0, "backend {backend}");
        assert_eq!(report.shed(), 0, "backend {backend}");
        // The hot model dominates; per-model slices sum to the total with
        // none counted twice.
        let split: u64 = report.per_model.iter().map(|m| m.completed).sum();
        assert_eq!(split, 30, "backend {backend}: double-counted responses");
        assert!(
            report.per_model[0].completed > report.per_model[1].completed,
            "backend {backend}: hot model not hot"
        );
        let stats = engine.shutdown();
        assert_eq!(stats.served, 30, "backend {backend}: engine count");
    }
}

/// Bursty arrivals keep exact accounting: every scheduled request lands in
/// exactly one of completed/shed/errors, outputs stay bit-exact.
#[test]
fn bursty_arrivals_account_for_every_request() {
    let registry = Arc::new(ModelRegistry::new());
    let models = zoo(&registry, 2, 0x200);
    let engine = Engine::start(
        Arc::clone(&registry),
        EngineConfig {
            workers: 2,
            queue_capacity: 64,
            max_batch: 8,
            ..EngineConfig::default()
        },
    );
    let wl = StandardWorkload {
        arrival: Arrival::Bursty {
            rate_hz: 2000.0,
            burst: 8,
            idle: Duration::from_millis(5),
        },
        mix: Mix::Uniform,
    };
    let report = harness::run(
        &engine,
        &models,
        &wl,
        RunConfig {
            requests: 48,
            shards: 2,
            seed: 0xB0B,
            ..RunConfig::default()
        },
    );
    assert_eq!(
        report.completed + report.shed() + report.errors,
        48,
        "lost requests"
    );
    assert_eq!(report.mismatches, 0);
    assert_eq!(report.latency.count(), report.completed);
    let stats = engine.shutdown();
    assert_eq!(stats.served, report.completed, "served != verified");
}

/// A saturated tiny queue under open-loop overload sheds (never stalls,
/// never loses): queue-full submits are counted, completed responses stay
/// bit-exact, and the run terminates promptly.
#[test]
fn queue_full_overload_sheds_without_losing_requests() {
    let registry = Arc::new(ModelRegistry::new());
    let models = zoo(&registry, 1, 0x300);
    let engine = Engine::start(
        Arc::clone(&registry),
        EngineConfig {
            workers: 1,
            queue_capacity: 1,
            max_batch: 1,
            ..EngineConfig::default()
        },
    );
    let wl = StandardWorkload {
        arrival: Arrival::Open {
            rate_hz: 1_000_000.0,
        },
        mix: Mix::Uniform,
    };
    let report = harness::run(
        &engine,
        &models,
        &wl,
        RunConfig {
            requests: 100,
            shards: 2,
            seed: 0xFADE,
            ..RunConfig::default()
        },
    );
    assert_eq!(report.completed + report.shed() + report.errors, 100);
    assert!(report.shed_queue > 0, "expected queue-full sheds");
    assert_eq!(report.mismatches, 0);
    let stats = engine.shutdown();
    assert_eq!(stats.served, report.completed);
}

/// Shutdown under backpressure: closing the engine mid-run turns the
/// remaining submits into counted errors — nothing hangs, nothing is lost,
/// and everything the engine reports served was actually verified.
#[test]
fn shutdown_under_backpressure_keeps_accounting_exact() {
    let registry = Arc::new(ModelRegistry::new());
    let models = zoo(&registry, 2, 0x400);
    let engine = Engine::start(
        Arc::clone(&registry),
        EngineConfig {
            workers: 1,
            queue_capacity: 4,
            max_batch: 2,
            ..EngineConfig::default()
        },
    );
    let wl = StandardWorkload {
        arrival: Arrival::Closed,
        mix: Mix::Sequential,
    };
    let report = std::thread::scope(|scope| {
        let engine_ref = &engine;
        scope.spawn(move || {
            // Let some requests through, then slam the door while
            // generators are still submitting against backpressure.
            std::thread::sleep(Duration::from_millis(30));
            engine_ref.begin_shutdown();
        });
        harness::run(
            engine_ref,
            &models,
            &wl,
            RunConfig {
                requests: 400,
                shards: 4,
                seed: 0xD00D,
                ..RunConfig::default()
            },
        )
    });
    assert_eq!(
        report.completed + report.errors,
        400,
        "closed-loop run must account for every request through shutdown"
    );
    assert_eq!(
        report.mismatches, 0,
        "responses served during shutdown must stay bit-exact"
    );
    let stats = engine.shutdown();
    assert_eq!(
        stats.served, report.completed,
        "engine served count must equal verified completions"
    );
}

/// Deterministic replay: the same seed and config expand to the identical
/// request sequence (bit for bit), a different seed does not, and two
/// harness runs over the same schedule produce identical count outcomes
/// for closed-loop (structurally deterministic) workloads.
#[test]
fn same_seed_replays_identical_request_streams() {
    for (arrival, mix) in [
        (Arrival::Closed, Mix::HotCold { hot_share: 0.8 }),
        (Arrival::Open { rate_hz: 700.0 }, Mix::Uniform),
        (
            Arrival::Ramp {
                start_hz: 100.0,
                end_hz: 900.0,
            },
            Mix::Sequential,
        ),
    ] {
        let wl = StandardWorkload { arrival, mix };
        let a: Vec<RequestSpec> = wl.schedule(120, 3, 0xCAFE);
        let b = wl.schedule(120, 3, 0xCAFE);
        assert_eq!(a, b, "same seed must replay bit-for-bit ({})", wl.label());
        let c = wl.schedule(120, 3, 0xCAFF);
        assert_ne!(a, c, "different seed must differ ({})", wl.label());
    }

    // End to end: two closed-loop runs with one seed agree on every count,
    // overall and per model.
    let registry = Arc::new(ModelRegistry::new());
    let models = zoo(&registry, 3, 0x500);
    let wl = StandardWorkload {
        arrival: Arrival::Closed,
        mix: Mix::HotCold { hot_share: 0.7 },
    };
    let run_once = || {
        let engine = Engine::start(Arc::clone(&registry), EngineConfig::default());
        let report = harness::run(
            &engine,
            &models,
            &wl,
            RunConfig {
                requests: 36,
                shards: 2,
                seed: 0xABBA,
                ..RunConfig::default()
            },
        );
        let _ = engine.shutdown();
        report
    };
    let first = run_once();
    let second = run_once();
    assert_eq!(first.scheduled, second.scheduled);
    assert_eq!(first.completed, second.completed);
    assert_eq!(first.mismatches, 0);
    assert_eq!(second.mismatches, 0);
    for (a, b) in first.per_model.iter().zip(&second.per_model) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.scheduled, b.scheduled, "model {} split diverged", a.name);
        assert_eq!(a.completed, b.completed, "model {} diverged", a.name);
    }
}

/// The observability stack end to end: per-layer reuse counters, request
/// lifecycle phases, interval samples, and the metrics exposition must all
/// reconcile with the harness's own accounting — and enabling the reuse
/// counters must not meaningfully change throughput (the counts are
/// analytic per `run_layer` call, not hot-loop instrumentation; the
/// measured cost is documented in EXPERIMENTS.md, and only a loose bound
/// is asserted here because absolute speed is machine-dependent).
#[test]
fn metrics_and_reuse_counters_reconcile_with_harness_accounting() {
    use ucnn::core::counters;

    let registry = Arc::new(ModelRegistry::new());
    let models = zoo(&registry, 2, 0x600);
    let wl = StandardWorkload {
        arrival: Arrival::Closed,
        mix: Mix::Sequential,
    };
    let run_once = |counting: bool| {
        let engine = Engine::start(
            Arc::clone(&registry),
            EngineConfig {
                workers: 2,
                queue_capacity: 32,
                max_batch: 4,
                exec_threads: 1,
                backend: BackendKind::BatchThreads,
                ..EngineConfig::default()
            },
        );
        if counting {
            counters::set_enabled(true);
        }
        let report = harness::run(
            &engine,
            &models,
            &wl,
            RunConfig {
                requests: 60,
                shards: 2,
                seed: 6,
                interval: Some(Duration::from_millis(2)),
                ..RunConfig::default()
            },
        );
        if counting {
            counters::set_enabled(false);
        }
        let metrics = Arc::clone(engine.metrics());
        let stats = engine.shutdown();
        (report, stats, metrics)
    };

    let (report, stats, metrics) = run_once(true);
    assert_eq!(report.completed, 60);
    assert_eq!(report.mismatches, 0);

    // Harness accounting mirrored into the registry reconciles exactly.
    assert_eq!(metrics.counter("harness_scheduled_total").get(), 60);
    assert_eq!(
        metrics.counter("harness_scheduled_total").get(),
        metrics.counter("harness_completed_total").get()
            + metrics.counter("harness_shed_total").get()
            + metrics.counter("harness_errors_total").get()
    );
    // Engine lifecycle counters agree with the engine's own stats, and
    // every phase counted once per request.
    assert_eq!(metrics.counter("engine_requests_total").get(), stats.served);
    assert_eq!(stats.phases.queue_wait.count, stats.served);
    assert_eq!(stats.phases.execute.count, stats.served);
    assert_eq!(stats.phases.batch_form.count, stats.served);
    assert_eq!(stats.phases.respond.count, stats.served);
    // Interval samples rode along and end with the full run.
    assert!(report.intervals.len() >= 2);
    assert_eq!(report.intervals.last().unwrap().served, stats.served);
    // The exposition parses line-by-line and carries both families.
    let text = metrics.render_prometheus();
    assert!(text.contains("# TYPE harness_scheduled_total counter"));
    assert!(text.contains("# TYPE engine_queue_wait_ns summary"));
    for line in text.lines().filter(|l| !l.starts_with('#')) {
        assert_eq!(line.split_whitespace().count(), 2, "bad line: {line}");
    }

    // Reuse tallies cover both zoo models for the serving backend, with
    // the factorized walk never exceeding dense-equivalent work. Sibling
    // tests share the global sink and the zoo names, so filter down to
    // this run's backend rather than asserting exclusivity.
    let rows: Vec<_> = counters::snapshot()
        .into_iter()
        .filter(|r| (r.net == "tiny" || r.net == "tiny-1") && r.backend == "batch-threads")
        .collect();
    assert!(!rows.is_empty(), "serving must produce reuse tallies");
    for row in &rows {
        assert!(row.work.multiplies_issued > 0);
        assert!(row.work.multiplies_issued <= row.work.dense_multiplies);
    }
    counters::reset();

    // Loose overhead bound: a counted run must not be drastically slower
    // than an uncounted one (target <5%; asserted at 2x for CI noise).
    let t0 = std::time::Instant::now();
    let (r_off, _, _) = run_once(false);
    let off = t0.elapsed();
    let t1 = std::time::Instant::now();
    let (r_on, _, _) = run_once(true);
    let on = t1.elapsed();
    assert_eq!(r_off.completed, r_on.completed);
    assert!(
        on.as_secs_f64() < off.as_secs_f64() * 2.0 + 0.05,
        "counting cost exploded: on={on:?} off={off:?}"
    );
    counters::reset();
}
