//! Chaos suite: the serving engine under induced failure — a worker dying
//! mid-batch, consumers that stop reading responses, the registry being
//! churned (re-insert + backend retune) under sustained traffic, and
//! shutdown while producers are blocked on a full queue. Every test
//! asserts invariants (exact accounting, bit-exact outputs, no hangs)
//! rather than timings, so the suite is deterministic in CI.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use ucnn::core::backend::BackendKind;
use ucnn::core::compile::UcnnConfig;
use ucnn::model::{forward, networks, ActivationGen, NetworkSpec, QuantScheme};
use ucnn::serve::harness::{self, Case, ModelCases, RunConfig};
use ucnn::serve::workload::{Arrival, Mix, StandardWorkload};
use ucnn::serve::{Engine, EngineConfig, ModelRegistry, ServeError};
use ucnn::tensor::Tensor3;

/// Registers `n` copies of the tiny topology under distinct names with
/// distinct weights and returns verified cases for each. Weight seeds are
/// `seed + i`, so a churn thread can regenerate bit-identical weights.
fn zoo(registry: &Arc<ModelRegistry>, n: usize, seed: u64) -> Vec<ModelCases> {
    let tiny = networks::tiny();
    let mut agen = ActivationGen::new(seed ^ 0xACE);
    (0..n)
        .map(|i| {
            let name = if i == 0 {
                "tiny".to_string()
            } else {
                format!("tiny-{i}")
            };
            let mut spec = NetworkSpec::new(&name);
            for layer in tiny.layers() {
                spec.push(layer.clone());
            }
            let weights =
                forward::generate_network_weights(&spec, QuantScheme::inq(), seed + i as u64, 0.9);
            registry.compile_and_insert(&spec, &weights, &UcnnConfig::with_g(2));
            let cases: Vec<Case> = (0..3)
                .map(|_| {
                    let input = agen.generate_for(&spec.conv_layers()[0]);
                    let expected = forward::dense_forward(&spec, &weights, &input);
                    (input, expected)
                })
                .collect();
            ModelCases { name, cases }
        })
        .collect()
}

/// A worker dying to a panic must be *surfaced* (panicked-worker count and
/// message in the stats) and *survived*: requests that land on the dead
/// worker's shard are stolen by the survivors, so the fleet keeps
/// completing everything bit-exactly on reduced capacity.
#[test]
fn worker_death_is_surfaced_and_traffic_reroutes_around_the_dead_shard() {
    let registry = Arc::new(ModelRegistry::new());
    let models = zoo(&registry, 2, 0x300);
    let engine = Engine::start(
        Arc::clone(&registry),
        EngineConfig {
            workers: 4,
            queue_capacity: 64,
            max_batch: 4,
            ..EngineConfig::default()
        },
    );

    // Poison pill: a malformed input panics its worker mid-forward. The
    // caller sees a lost worker, not a hang.
    let plan = registry.get("tiny").expect("tiny registered");
    let poison = engine
        .submit_plan(plan, Tensor3::<i16>::zeros(1, 1, 1))
        .expect("poison enqueues");
    assert!(
        matches!(poison.wait(), Err(ServeError::WorkerLost)),
        "a panicked worker must drop the response channel"
    );

    // The engine keeps serving on the remaining workers: the dead shard
    // still receives pushes (submit-time shard selection doesn't know the
    // worker died), so completion of the full run proves stealing drains
    // it.
    let wl = StandardWorkload {
        arrival: Arrival::Closed,
        mix: Mix::Uniform,
    };
    let report = harness::run(
        &engine,
        &models,
        &wl,
        RunConfig {
            requests: 80,
            shards: 4,
            seed: 0xC0C,
            ..RunConfig::default()
        },
    );
    assert_eq!(report.completed, 80, "lost requests after worker death");
    assert_eq!(report.mismatches, 0);
    assert_eq!(report.errors, 0);
    assert_eq!(report.shed(), 0);

    let stats = engine.shutdown();
    assert_eq!(stats.panicked_workers, 1, "exactly one worker died");
    let msg = stats.panic_message.expect("panic message surfaced");
    assert!(
        msg.contains("input dims"),
        "panic message must carry the cause, got: {msg}"
    );
    assert!(
        stats.steals > 0,
        "requests on the dead worker's shard can only complete via steals"
    );
    assert_eq!(stats.served, 80, "the poison request must not count");
}

/// Consumers that go away without reading their responses must not stall
/// the engine: workers keep draining and the responses sit in their
/// per-request channels until (if ever) collected.
#[test]
fn slow_consumers_never_stall_the_engine() {
    let registry = Arc::new(ModelRegistry::new());
    let models = zoo(&registry, 1, 0x350);
    let engine = Engine::start(
        Arc::clone(&registry),
        EngineConfig {
            workers: 2,
            queue_capacity: 16,
            max_batch: 4,
            ..EngineConfig::default()
        },
    );

    // Submit a full wave and read *nothing* yet.
    let cases = &models[0].cases;
    let pendings: Vec<_> = (0..24)
        .map(|i| {
            let (input, _) = &cases[i % cases.len()];
            engine
                .submit("tiny", input.clone())
                .expect("blocking submit succeeds")
        })
        .collect();

    // The engine must serve the whole wave without anyone calling wait().
    let drained_by = Instant::now() + Duration::from_secs(30);
    while engine.stats().served < 24 {
        assert!(
            Instant::now() < drained_by,
            "engine stalled behind slow consumers: served {}",
            engine.stats().served
        );
        thread::sleep(Duration::from_millis(1));
    }

    // Late collection still observes every response, bit-exact.
    for (i, pending) in pendings.into_iter().enumerate() {
        let resp = pending.wait().expect("response retained for late reader");
        let (_, expected) = &cases[i % cases.len()];
        assert_eq!(&resp.output, expected, "request {i} diverged");
    }
    let stats = engine.shutdown();
    assert_eq!(stats.served, 24);
    assert_eq!(stats.panicked_workers, 0);
}

/// Satellite: registry churn under load. While a closed-loop run is in
/// flight, a churn thread re-inserts both models (same weights, fresh
/// compile) and retunes the cold model's backend every couple of
/// milliseconds. Requests already holding the old plan finish on it;
/// every response stays bit-exact, nothing is lost, and the hot model's
/// backend override survives every replacement.
#[test]
fn registry_churn_under_load_stays_bit_exact_and_keeps_the_override() {
    let seed = 0x400u64;
    let registry = Arc::new(ModelRegistry::new());
    let models = zoo(&registry, 2, seed);
    assert!(
        registry.set_backend("tiny", Some(BackendKind::Flattened)),
        "override target registered"
    );
    let engine = Engine::start(
        Arc::clone(&registry),
        EngineConfig {
            workers: 2,
            queue_capacity: 64,
            max_batch: 4,
            ..EngineConfig::default()
        },
    );

    let stop = Arc::new(AtomicBool::new(false));
    let churn = thread::spawn({
        let registry = Arc::clone(&registry);
        let stop = Arc::clone(&stop);
        move || {
            let tiny = networks::tiny();
            let mut spins = 0u64;
            while !stop.load(Ordering::Relaxed) {
                for (i, name) in ["tiny", "tiny-1"].iter().enumerate() {
                    let mut spec = NetworkSpec::new(*name);
                    for layer in tiny.layers() {
                        spec.push(layer.clone());
                    }
                    // Same seed as `zoo` → bit-identical weights, so the
                    // replacement plan must produce identical outputs.
                    let weights = forward::generate_network_weights(
                        &spec,
                        QuantScheme::inq(),
                        seed + i as u64,
                        0.9,
                    );
                    registry.compile_and_insert(&spec, &weights, &UcnnConfig::with_g(2));
                }
                // Retune the cold model back and forth; every backend is
                // bit-identical, so mismatches stay impossible by design.
                let retune = if spins % 2 == 0 {
                    BackendKind::Batch
                } else {
                    BackendKind::Compiled
                };
                registry.set_backend("tiny-1", Some(retune));
                spins += 1;
                thread::sleep(Duration::from_millis(2));
            }
            spins
        }
    });

    let wl = StandardWorkload {
        arrival: Arrival::Closed,
        mix: Mix::HotCold { hot_share: 0.8 },
    };
    let report = harness::run(
        &engine,
        &models,
        &wl,
        RunConfig {
            requests: 120,
            shards: 3,
            seed: 0x7A7,
            ..RunConfig::default()
        },
    );
    stop.store(true, Ordering::Relaxed);
    let spins = churn.join().expect("churn thread clean");
    assert!(spins >= 1, "the registry must actually have churned");

    assert_eq!(report.completed, 120, "churn lost requests");
    assert_eq!(report.mismatches, 0, "churn broke bit-exactness");
    assert_eq!(report.errors, 0);
    assert_eq!(report.shed(), 0);
    assert_eq!(
        registry.backend_override("tiny"),
        Some(BackendKind::Flattened),
        "per-model override must survive every re-insert"
    );
    let stats = engine.shutdown();
    assert_eq!(stats.served, 120);
    assert_eq!(stats.panicked_workers, 0);
}

/// Shutdown while producers are blocked on a full queue: every accepted
/// request resolves with a bit-exact response, every rejected submit gets
/// a clean `ShuttingDown`, blocked producers are woken (the test would
/// hang otherwise), and the served count equals exactly the accepted set.
#[test]
fn shutdown_under_backpressure_resolves_every_accepted_request() {
    let registry = Arc::new(ModelRegistry::new());
    let models = zoo(&registry, 1, 0x450);
    let engine = Arc::new(Engine::start(
        Arc::clone(&registry),
        EngineConfig {
            workers: 1,
            queue_capacity: 4,
            max_batch: 2,
            ..EngineConfig::default()
        },
    ));

    // Four producers push far more than the queue holds, so some are
    // always parked in the blocking submit path when shutdown begins.
    let cases = Arc::new(models[0].cases.clone());
    let producers: Vec<_> = (0..4)
        .map(|p| {
            let engine = Arc::clone(&engine);
            let cases = Arc::clone(&cases);
            thread::spawn(move || {
                let mut ok = Vec::new();
                let mut rejected = 0u64;
                for i in 0..25usize {
                    let case = (p * 25 + i) % cases.len();
                    match engine.submit("tiny", cases[case].0.clone()) {
                        Ok(pending) => ok.push((case, pending)),
                        Err(ServeError::ShuttingDown) => rejected += 1,
                        Err(e) => panic!("unexpected submit error: {e}"),
                    }
                }
                (ok, rejected)
            })
        })
        .collect();

    thread::sleep(Duration::from_millis(10));
    engine.begin_shutdown();

    let mut accepted = 0u64;
    let mut rejected = 0u64;
    for producer in producers {
        let (ok, rej) = producer.join().expect("producer survived shutdown");
        rejected += rej;
        for (case, pending) in ok {
            // Accepted before the close ⇒ drained and answered, even
            // though the engine was already shutting down.
            let resp = pending.wait().expect("accepted request must resolve");
            assert_eq!(&resp.output, &cases[case].1, "diverged under shutdown");
            accepted += 1;
        }
    }
    assert_eq!(accepted + rejected, 100, "a submit vanished");

    let engine = Arc::into_inner(engine).expect("sole owner after joins");
    let stats = engine.shutdown();
    assert_eq!(stats.served, accepted, "served ≠ accepted");
    assert_eq!(stats.panicked_workers, 0);
}
