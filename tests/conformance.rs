//! Golden conformance corpus: every registered executor backend against
//! every checked-in vector.
//!
//! The corpus lives in `tests/golden/*.txt` as a simple line-oriented text
//! format: small fixed layers and networks with concrete weights, inputs,
//! and the expected `i32` outputs (computed once from the dense reference
//! and committed). The harness runs **every** [`BackendKind`] against every
//! vector at several batch sizes and thread counts — a new backend added to
//! the registry inherits the whole suite with zero new test code.
//!
//! Regenerate the corpus (e.g. after adding a case) with:
//!
//! ```sh
//! UCNN_REGEN_GOLDEN=1 cargo test --test conformance
//! ```
//!
//! Regeneration recomputes expected outputs from the dense reference
//! (`ucnn::model::reference`), which no backend shares code with; the
//! checked-in files additionally pin the reference itself against silent
//! behavior changes (the harness recomputes and compares).

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use ucnn::core::backend::{backend, BackendKind};
use ucnn::core::compile::UcnnConfig;
use ucnn::core::plan::{CompiledLayer, CompiledNetwork};
use ucnn::model::{
    forward, networks, reference, ActivationGen, NetworkSpec, QuantScheme, WeightGen,
};
use ucnn::tensor::{ConvGeom, Tensor3, Tensor4};

/// One parsed golden vector.
enum GoldenCase {
    Layer {
        name: String,
        geom: ConvGeom,
        conv_groups: usize,
        g: usize,
        ct: usize,
        weights: Tensor4<i16>,
        input: Tensor3<i16>,
        output: Tensor3<i32>,
    },
    Network {
        name: String,
        network: String,
        g: usize,
        ct: usize,
        weights: Vec<Tensor4<i16>>,
        input: Tensor3<i16>,
        output: Tensor3<i32>,
    },
}

fn spec_by_name(name: &str) -> NetworkSpec {
    match name {
        "tiny" => networks::tiny(),
        other => panic!("unknown network '{other}' in golden vector"),
    }
}

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

// ---------------------------------------------------------------------------
// Corpus definitions (used only for regeneration).
// ---------------------------------------------------------------------------

fn corpus_definitions() -> Vec<GoldenCase> {
    struct LayerDef {
        name: &'static str,
        geom: ConvGeom,
        conv_groups: usize,
        g: usize,
        ct: usize,
        scheme: QuantScheme,
        density: f64,
        seed: u64,
    }
    let layer_defs = vec![
        LayerDef {
            name: "layer_fc_64x10_ttq",
            geom: ConvGeom::new(1, 1, 64, 10, 1, 1),
            conv_groups: 1,
            g: 2,
            ct: 16,
            scheme: QuantScheme::ttq(),
            density: 0.5,
            seed: 101,
        },
        LayerDef {
            name: "layer_conv_stride2_pad1_inq",
            geom: ConvGeom::new(11, 9, 5, 6, 3, 3).with_stride(2).with_pad(1),
            conv_groups: 1,
            g: 2,
            ct: 3,
            scheme: QuantScheme::inq(),
            density: 0.7,
            seed: 102,
        },
        LayerDef {
            name: "layer_grouped_conv_pad1",
            geom: ConvGeom::new(7, 7, 4, 6, 3, 3).with_pad(1),
            conv_groups: 2,
            g: 2,
            ct: 4,
            scheme: QuantScheme::inq(),
            density: 0.8,
            seed: 103,
        },
        LayerDef {
            name: "layer_ragged_ct_g3",
            geom: ConvGeom::new(8, 8, 10, 4, 3, 3),
            conv_groups: 1,
            g: 3,
            ct: 4,
            scheme: QuantScheme::uniform_unique(9),
            density: 0.65,
            seed: 104,
        },
        LayerDef {
            name: "layer_very_sparse",
            geom: ConvGeom::new(6, 6, 4, 4, 3, 3),
            conv_groups: 1,
            g: 2,
            ct: 4,
            scheme: QuantScheme::uniform_unique(17),
            density: 0.1,
            seed: 105,
        },
        LayerDef {
            // Deep halo: pad 2 with a 3×3 filter makes every gather delta
            // non-positive, so edge outputs clip reads on all four sides —
            // the branchy checked-gather path of the flattened executors.
            name: "layer_halo_pad2_stride2",
            geom: ConvGeom::new(7, 6, 3, 4, 3, 3).with_stride(2).with_pad(2),
            conv_groups: 1,
            g: 2,
            ct: 2,
            scheme: QuantScheme::inq(),
            density: 0.75,
            seed: 107,
        },
        LayerDef {
            name: "layer_g_exceeds_k",
            geom: ConvGeom::new(5, 5, 4, 3, 3, 3),
            conv_groups: 1,
            g: 8,
            ct: 64,
            scheme: QuantScheme::inq(),
            density: 0.9,
            seed: 106,
        },
    ];

    let mut cases = Vec::new();
    for def in layer_defs {
        let mut wgen = WeightGen::new(def.scheme, def.seed).with_density(def.density);
        let weights = wgen.generate_dims(def.geom.k(), def.geom.c(), def.geom.r(), def.geom.s());
        let mut agen = ActivationGen::new(def.seed ^ 0xAC);
        let input = agen.generate(
            def.geom.c() * def.conv_groups,
            def.geom.in_w(),
            def.geom.in_h(),
        );
        let output = reference::conv2d(&def.geom, def.conv_groups, &input, &weights);
        cases.push(GoldenCase::Layer {
            name: def.name.to_string(),
            geom: def.geom,
            conv_groups: def.conv_groups,
            g: def.g,
            ct: def.ct,
            weights,
            input,
            output,
        });
    }

    for (name, scheme, density, g, ct, seed) in [
        (
            "network_tiny_inq_g2",
            QuantScheme::inq(),
            0.85,
            2,
            64,
            111u64,
        ),
        ("network_tiny_ttq_g3", QuantScheme::ttq(), 0.6, 3, 8, 112),
    ] {
        let net = networks::tiny();
        let weights = forward::generate_network_weights(&net, scheme, seed, density);
        let mut agen = ActivationGen::new(seed ^ 0xAC);
        let input = agen.generate_for(&net.conv_layers()[0]);
        let output = forward::dense_forward(&net, &weights, &input);
        cases.push(GoldenCase::Network {
            name: name.to_string(),
            network: "tiny".to_string(),
            g,
            ct,
            weights,
            input,
            output,
        });
    }
    cases
}

// ---------------------------------------------------------------------------
// Serialization.
// ---------------------------------------------------------------------------

fn push_nums<T: std::fmt::Display>(out: &mut String, label: &str, dims: &[usize], vals: &[T]) {
    out.push_str(label);
    for d in dims {
        write!(out, " {d}").unwrap();
    }
    for v in vals {
        write!(out, " {v}").unwrap();
    }
    out.push('\n');
}

fn serialize(case: &GoldenCase) -> String {
    let mut s = String::new();
    match case {
        GoldenCase::Layer {
            name,
            geom,
            conv_groups,
            g,
            ct,
            weights,
            input,
            output,
        } => {
            writeln!(s, "# UCNN golden conformance vector '{name}'.").unwrap();
            writeln!(
                s,
                "# Regenerate with: UCNN_REGEN_GOLDEN=1 cargo test --test conformance"
            )
            .unwrap();
            writeln!(s, "kind layer").unwrap();
            writeln!(
                s,
                "geom {} {} {} {} {} {} {} {}",
                geom.in_w(),
                geom.in_h(),
                geom.c(),
                geom.k(),
                geom.r(),
                geom.s(),
                geom.stride(),
                geom.pad()
            )
            .unwrap();
            writeln!(s, "conv_groups {conv_groups}").unwrap();
            writeln!(s, "g {g}").unwrap();
            writeln!(s, "ct {ct}").unwrap();
            push_nums(
                &mut s,
                "weights",
                &[weights.k(), weights.c(), weights.r(), weights.s()],
                weights.as_slice(),
            );
            push_nums(
                &mut s,
                "input",
                &[input.c(), input.w(), input.h()],
                input.as_slice(),
            );
            push_nums(
                &mut s,
                "output",
                &[output.c(), output.w(), output.h()],
                output.as_slice(),
            );
        }
        GoldenCase::Network {
            name,
            network,
            g,
            ct,
            weights,
            input,
            output,
        } => {
            writeln!(s, "# UCNN golden conformance vector '{name}'.").unwrap();
            writeln!(
                s,
                "# Regenerate with: UCNN_REGEN_GOLDEN=1 cargo test --test conformance"
            )
            .unwrap();
            writeln!(s, "kind network").unwrap();
            writeln!(s, "network {network}").unwrap();
            writeln!(s, "g {g}").unwrap();
            writeln!(s, "ct {ct}").unwrap();
            writeln!(s, "weights {}", weights.len()).unwrap();
            for w in weights {
                push_nums(&mut s, "w", &[w.k(), w.c(), w.r(), w.s()], w.as_slice());
            }
            push_nums(
                &mut s,
                "input",
                &[input.c(), input.w(), input.h()],
                input.as_slice(),
            );
            push_nums(
                &mut s,
                "output",
                &[output.c(), output.w(), output.h()],
                output.as_slice(),
            );
        }
    }
    s
}

// ---------------------------------------------------------------------------
// Parsing.
// ---------------------------------------------------------------------------

struct Lines<'a> {
    name: &'a str,
    iter: std::str::Lines<'a>,
}

impl<'a> Lines<'a> {
    /// Next non-comment line, split into tokens, with the expected label
    /// stripped.
    fn expect(&mut self, label: &str) -> Vec<&'a str> {
        loop {
            let line = self
                .iter
                .next()
                .unwrap_or_else(|| panic!("{}: unexpected end before '{label}'", self.name));
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut tokens = line.split_whitespace();
            let got = tokens.next().unwrap();
            assert_eq!(got, label, "{}: expected '{label}', got '{got}'", self.name);
            return tokens.collect();
        }
    }
}

fn nums<T: std::str::FromStr>(name: &str, tokens: &[&str]) -> Vec<T>
where
    T::Err: std::fmt::Debug,
{
    tokens
        .iter()
        .map(|t| {
            t.parse()
                .unwrap_or_else(|e| panic!("{name}: bad number '{t}': {e:?}"))
        })
        .collect()
}

fn parse_tensor4(name: &str, tokens: &[&str]) -> Tensor4<i16> {
    let dims: Vec<usize> = nums(name, &tokens[..4]);
    let vals: Vec<i16> = nums(name, &tokens[4..]);
    Tensor4::from_vec(dims[0], dims[1], dims[2], dims[3], vals)
        .unwrap_or_else(|_| panic!("{name}: weight tensor shape/value mismatch"))
}

fn parse_tensor3<T: std::str::FromStr + ucnn::tensor::Elem>(
    name: &str,
    tokens: &[&str],
) -> Tensor3<T>
where
    T::Err: std::fmt::Debug,
{
    let dims: Vec<usize> = nums(name, &tokens[..3]);
    let vals: Vec<T> = nums(name, &tokens[3..]);
    Tensor3::from_vec(dims[0], dims[1], dims[2], vals)
        .unwrap_or_else(|_| panic!("{name}: tensor shape/value mismatch"))
}

fn parse(name: &str, text: &str) -> GoldenCase {
    let mut lines = Lines {
        name,
        iter: text.lines(),
    };
    let kind = lines.expect("kind");
    match kind.as_slice() {
        ["layer"] => {
            let geom_nums: Vec<usize> = nums(name, &lines.expect("geom"));
            let [in_w, in_h, c, k, r, s, stride, pad] = geom_nums.as_slice() else {
                panic!("{name}: geom needs 8 fields");
            };
            let geom = ConvGeom::new(*in_w, *in_h, *c, *k, *r, *s)
                .with_stride(*stride)
                .with_pad(*pad);
            let conv_groups: usize = nums(name, &lines.expect("conv_groups"))[0];
            let g: usize = nums(name, &lines.expect("g"))[0];
            let ct: usize = nums(name, &lines.expect("ct"))[0];
            let weights = parse_tensor4(name, &lines.expect("weights"));
            let input = parse_tensor3::<i16>(name, &lines.expect("input"));
            let output = parse_tensor3::<i32>(name, &lines.expect("output"));
            GoldenCase::Layer {
                name: name.to_string(),
                geom,
                conv_groups,
                g,
                ct,
                weights,
                input,
                output,
            }
        }
        ["network"] => {
            let network = lines.expect("network")[0].to_string();
            let g: usize = nums(name, &lines.expect("g"))[0];
            let ct: usize = nums(name, &lines.expect("ct"))[0];
            let count: usize = nums(name, &lines.expect("weights"))[0];
            let weights: Vec<Tensor4<i16>> = (0..count)
                .map(|_| parse_tensor4(name, &lines.expect("w")))
                .collect();
            let input = parse_tensor3::<i16>(name, &lines.expect("input"));
            let output = parse_tensor3::<i32>(name, &lines.expect("output"));
            GoldenCase::Network {
                name: name.to_string(),
                network,
                g,
                ct,
                weights,
                input,
                output,
            }
        }
        other => panic!("{name}: unknown kind {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// The conformance run.
// ---------------------------------------------------------------------------

/// Batch sizes × thread counts every backend is driven with. The batch
/// sizes straddle every dispatchable lane width: 9 = one full 8-lane
/// chunk + a width-1 residual (scalar/NEON tier), 17 = one full 16-lane
/// chunk + residual (AVX2 tier), 33 = one full 32-lane chunk + residual
/// (AVX-512 tier) — so whichever ISA tier the host dispatches (or
/// `UCNN_SIMD` forces), the run covers both its full-width strip and its
/// remainder path.
const SHAPES: [(usize, usize); 6] = [(1, 1), (1, 2), (3, 2), (9, 2), (17, 2), (33, 2)];

fn check_case(case: &GoldenCase) {
    match case {
        GoldenCase::Layer {
            name,
            geom,
            conv_groups,
            g,
            ct,
            weights,
            input,
            output,
        } => {
            // The committed output must still be what the dense reference
            // computes — pins the reference against silent changes.
            assert_eq!(
                &reference::conv2d(geom, *conv_groups, input, weights),
                output,
                "{name}: dense reference diverged from the committed golden output"
            );
            let cfg = UcnnConfig {
                g: *g,
                ct: *ct,
                ..UcnnConfig::default()
            };
            let layer = CompiledLayer::compile(geom, *conv_groups, weights, &cfg);
            for kind in BackendKind::ALL {
                for (b, threads) in SHAPES {
                    let inputs = vec![input.clone(); b];
                    let got = backend(kind).run_layer(&layer, &inputs, threads);
                    assert_eq!(got.len(), b, "{name}: {kind} returned wrong batch size");
                    for (i, out) in got.iter().enumerate() {
                        assert_eq!(
                            out, output,
                            "{name}: backend '{kind}' diverged (B={b}, threads={threads}, image {i})"
                        );
                    }
                }
            }
        }
        GoldenCase::Network {
            name,
            network,
            g,
            ct,
            weights,
            input,
            output,
        } => {
            let spec = spec_by_name(network);
            assert_eq!(
                &forward::dense_forward(&spec, weights, input),
                output,
                "{name}: dense forward diverged from the committed golden output"
            );
            let cfg = UcnnConfig {
                g: *g,
                ct: *ct,
                ..UcnnConfig::default()
            };
            let compiled = CompiledNetwork::compile(&spec, weights, &cfg);
            for kind in BackendKind::ALL {
                for (b, threads) in SHAPES {
                    let inputs = vec![input.clone(); b];
                    let got = compiled.forward_batch_with(&inputs, kind, threads);
                    assert_eq!(got.len(), b, "{name}: {kind} returned wrong batch size");
                    for (i, out) in got.iter().enumerate() {
                        assert_eq!(
                            out, output,
                            "{name}: backend '{kind}' diverged (B={b}, threads={threads}, image {i})"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn golden_corpus_runs_every_backend_bit_identically() {
    let dir = golden_dir();
    if std::env::var_os("UCNN_REGEN_GOLDEN").is_some() {
        std::fs::create_dir_all(&dir).expect("create golden dir");
        for case in corpus_definitions() {
            let (name, text) = match &case {
                GoldenCase::Layer { name, .. } => (name.clone(), serialize(&case)),
                GoldenCase::Network { name, .. } => (name.clone(), serialize(&case)),
            };
            std::fs::write(dir.join(format!("{name}.txt")), text).expect("write golden vector");
        }
    }

    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("tests/golden must exist (run with UCNN_REGEN_GOLDEN=1 to create it)")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|e| e == "txt"))
        .collect();
    files.sort();
    assert!(
        files.len() >= 9,
        "golden corpus incomplete: found {} vectors in {}",
        files.len(),
        dir.display()
    );

    for file in &files {
        let name = file
            .file_stem()
            .and_then(|s| s.to_str())
            .expect("utf-8 file name")
            .to_string();
        let text = std::fs::read_to_string(file).expect("read golden vector");
        let case = parse(&name, &text);
        check_case(&case);
    }
}

#[test]
fn corpus_definitions_round_trip_through_the_text_format() {
    // Serialization fidelity, independent of what is on disk: parse(serialize(x))
    // must preserve every tensor bit and config field.
    for case in corpus_definitions() {
        let text = serialize(&case);
        let (name, reparsed) = match &case {
            GoldenCase::Layer { name, .. } => (name.clone(), parse(name, &text)),
            GoldenCase::Network { name, .. } => (name.clone(), parse(name, &text)),
        };
        match (&case, &reparsed) {
            (
                GoldenCase::Layer {
                    geom: g1,
                    conv_groups: cg1,
                    g: ug1,
                    ct: ct1,
                    weights: w1,
                    input: i1,
                    output: o1,
                    ..
                },
                GoldenCase::Layer {
                    geom: g2,
                    conv_groups: cg2,
                    g: ug2,
                    ct: ct2,
                    weights: w2,
                    input: i2,
                    output: o2,
                    ..
                },
            ) => {
                assert_eq!(g1, g2, "{name}");
                assert_eq!(cg1, cg2, "{name}");
                assert_eq!(ug1, ug2, "{name}: g");
                assert_eq!(ct1, ct2, "{name}: ct");
                assert_eq!(w1, w2, "{name}");
                assert_eq!(i1, i2, "{name}");
                assert_eq!(o1, o2, "{name}");
            }
            (
                GoldenCase::Network {
                    network: n1,
                    g: ug1,
                    ct: ct1,
                    weights: w1,
                    input: i1,
                    output: o1,
                    ..
                },
                GoldenCase::Network {
                    network: n2,
                    g: ug2,
                    ct: ct2,
                    weights: w2,
                    input: i2,
                    output: o2,
                    ..
                },
            ) => {
                assert_eq!(n1, n2, "{name}");
                assert_eq!(ug1, ug2, "{name}: g");
                assert_eq!(ct1, ct2, "{name}: ct");
                assert_eq!(w1, w2, "{name}");
                assert_eq!(i1, i2, "{name}");
                assert_eq!(o1, o2, "{name}");
            }
            _ => panic!("{name}: kind changed across round trip"),
        }
    }
}

#[test]
fn every_isa_tier_matches_the_golden_corpus_bit_identically() {
    // The suite above runs whatever tier the host dispatches (or `UCNN_SIMD`
    // forces — the CI `simd` job re-runs the whole file once per tier). This
    // test removes the env dependency: it drives every golden *layer* vector
    // through every tier this machine can execute, with the quantized
    // shift-add path both on and off, in one process. Networks are covered
    // by the env-forced CI legs — the per-layer entry point is the only one
    // that takes an explicit kernel selection.
    use ucnn::core::flatten::run_flattened_batch_interleaved_forced;
    use ucnn::core::simd::{available_tiers, KernelSel};

    let dir = golden_dir();
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("tests/golden must exist (run with UCNN_REGEN_GOLDEN=1 to create it)")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|e| e == "txt"))
        .collect();
    files.sort();

    let mut layer_cases = 0usize;
    for file in &files {
        let name = file
            .file_stem()
            .and_then(|s| s.to_str())
            .expect("utf-8 file name")
            .to_string();
        let text = std::fs::read_to_string(file).expect("read golden vector");
        let GoldenCase::Layer {
            name,
            geom,
            conv_groups,
            g,
            ct,
            weights,
            input,
            output,
        } = parse(&name, &text)
        else {
            continue;
        };
        layer_cases += 1;
        let cfg = UcnnConfig {
            g,
            ct,
            ..UcnnConfig::default()
        };
        let layer = CompiledLayer::compile(&geom, conv_groups, &weights, &cfg);
        for &tier in available_tiers() {
            for shift_add in [true, false] {
                // shift_add=true on a non-power-of-two alphabet is a no-op
                // request: the kernel only takes the shift path when the
                // compiled tile actually classified as pow2/ternary.
                let sel = KernelSel { tier, shift_add };
                for (b, threads) in SHAPES {
                    let inputs = vec![input.clone(); b];
                    let got = run_flattened_batch_interleaved_forced(&layer, &inputs, threads, sel);
                    assert_eq!(got.len(), b, "{name}: {} wrong batch size", sel.label());
                    for (i, out) in got.iter().enumerate() {
                        assert_eq!(
                            out,
                            &output,
                            "{name}: tier '{}' diverged (B={b}, threads={threads}, image {i})",
                            sel.label()
                        );
                    }
                }
            }
        }
    }
    assert!(
        layer_cases >= 7,
        "expected the full layer corpus, found {layer_cases} vectors"
    );
}

#[test]
fn auto_is_bit_identical_under_a_forced_per_layer_calibration() {
    // `auto` already rides every golden vector above via BackendKind::ALL
    // (heuristic fallback, no table). This pins the *calibrated* dispatch
    // path: a table that deliberately forces a DIFFERENT winner per layer
    // must leave outputs bit-identical to the dense reference at every
    // batch × thread shape — the choice only ever changes performance.
    use std::sync::Arc;
    use ucnn::core::plan::CompiledStage;
    use ucnn::core::tune::{shape_key, CalibrationTable};

    let spec = networks::tiny();
    let weights = forward::generate_network_weights(&spec, QuantScheme::inq(), 0xA7, 0.85);
    let compiled = CompiledNetwork::compile(&spec, &weights, &UcnnConfig::with_g(2));

    // A palette that puts adjacent layers on maximally different inner
    // loops (per-call re-factorization next to flattened SIMD next to the
    // scalar walk).
    let palette = [
        BackendKind::Factorized,
        BackendKind::FlattenedBatch,
        BackendKind::Compiled,
        BackendKind::Batch,
        BackendKind::Flattened,
        BackendKind::BatchThreads,
    ];
    let table = Arc::new(CalibrationTable::new());
    let mut forced: Vec<(String, BackendKind)> = Vec::new();
    for (i, stage) in compiled
        .stages()
        .iter()
        .filter_map(|s| match s {
            CompiledStage::Conv { layer, .. } => Some(layer),
            CompiledStage::Pool { .. } => None,
        })
        .enumerate()
    {
        let winner = palette[i % palette.len()];
        // Only the forced backend gets an estimate, so the election is
        // unambiguous for every bucket SHAPES can land in.
        for bucket in [1usize, 2, 4, 8, 16] {
            table.seed(&shape_key(stage), bucket, winner, 1);
        }
        forced.push((shape_key(stage), winner));
    }
    assert!(
        forced.windows(2).all(|w| w[0].1 != w[1].1),
        "the test must actually force different winners on adjacent layers"
    );
    let compiled = compiled.with_calibration(Arc::clone(&table));

    let mut agen = ActivationGen::new(0xA8);
    let input = agen.generate_for(&spec.conv_layers()[0]);
    let expected = forward::dense_forward(&spec, &weights, &input);
    for (b, threads) in SHAPES {
        let inputs = vec![input.clone(); b];
        let got = compiled.forward_batch_with(&inputs, BackendKind::Auto, threads);
        assert_eq!(got.len(), b);
        for (i, out) in got.iter().enumerate() {
            assert_eq!(
                out, &expected,
                "auto (forced table) diverged (B={b}, threads={threads}, image {i})"
            );
        }
        // The table kept dispatching the forced winners: each run observed
        // only the forced backend, so the election cannot have moved.
        for (conv_i, (shape, winner)) in forced.iter().enumerate() {
            let layer = compiled
                .stages()
                .iter()
                .filter_map(|s| match s {
                    CompiledStage::Conv { layer, .. } => Some(layer),
                    CompiledStage::Pool { .. } => None,
                })
                .nth(conv_i)
                .unwrap();
            assert_eq!(&shape_key(layer), shape);
            assert_eq!(
                table.choice_for(layer, b).as_ref(),
                Some(winner),
                "layer {conv_i} must stay pinned to its forced winner"
            );
        }
    }
}
