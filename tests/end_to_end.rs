//! Cross-crate integration tests: model generation → core factorization →
//! functional execution → simulator, chained as a downstream user would.

use ucnn::core::compile::{compile_layer, UcnnConfig};
use ucnn::core::exec::factorized_conv;
use ucnn::model::reference;
use ucnn::model::{networks, ActivationGen, PoolKind, QuantScheme, WeightGen};
use ucnn::sim::lane::{run_lane, LaneConfig};
use ucnn::sim::{ArchConfig, Simulator};
use ucnn::tensor::Tensor3;

/// Full functional inference of the tiny network through the *factorized*
/// executor, layer chaining included, must match the dense pipeline
/// bit-for-bit.
#[test]
fn tiny_network_factorized_inference_matches_dense() {
    let net = networks::tiny();
    let convs = net.conv_layers();
    let mut wgen = WeightGen::new(QuantScheme::inq(), 0xEE).with_density(0.9);
    let mut agen = ActivationGen::new(0xAF);
    let cfg = UcnnConfig {
        g: 2,
        ct: 4,
        ..UcnnConfig::default()
    };

    let input = agen.generate_for(&convs[0]);
    let weights1 = wgen.generate(&convs[0]);
    let weights2 = wgen.generate(&convs[1]);

    // Dense pipeline.
    let d1 = reference::relu_saturate(&reference::conv_layer(&convs[0], &input, &weights1));
    let d2 = reference::relu_saturate(&reference::conv_layer(&convs[1], &d1, &weights2));
    let d_pool = reference::pool2d(&d2, PoolKind::Max, 2, 2);

    // Factorized pipeline.
    let f1 = reference::relu_saturate(&factorized_conv(
        &convs[0].geom(),
        convs[0].groups(),
        &input,
        &weights1,
        &cfg,
    ));
    let f2 = reference::relu_saturate(&factorized_conv(
        &convs[1].geom(),
        convs[1].groups(),
        &f1,
        &weights2,
        &cfg,
    ));
    let f_pool = reference::pool2d(&f2, PoolKind::Max, 2, 2);

    assert_eq!(d_pool, f_pool);

    // And through the FC head.
    let fc = &convs[2];
    let wfc = wgen.generate(fc);
    let flat = Tensor3::from_vec(fc.geom().c(), 1, 1, d_pool.into_vec()).unwrap();
    let dense_logits = reference::fully_connected(&flat, &wfc);
    let fact_logits = factorized_conv(&fc.geom(), 1, &flat, &wfc, &cfg);
    assert_eq!(dense_logits, fact_logits.as_slice());
}

/// The three §III-A properties measured on generated INQ weights feed the
/// simulator consistently: multiply savings seen by the plan equal the
/// repetition statistics' prediction within tolerance.
#[test]
fn repetition_statistics_predict_plan_multiplies() {
    let net = networks::lenet();
    let layer = net.conv_layer("conv3").unwrap();
    let mut wgen = WeightGen::new(QuantScheme::uniform_unique(17), 5).with_density(1.0);
    let weights = wgen.generate(&layer);
    let rep = ucnn::model::stats::LayerRepetition::measure("conv3", &weights);
    let plan = compile_layer(
        &weights,
        &UcnnConfig {
            group_cap: usize::MAX / 2,
            ..UcnnConfig::with_g(1)
        },
    );
    // Without the cap, multiplies per filter = distinct non-zero values.
    let plan_mults_per_filter = plan.totals().multiplies as f64 / weights.k() as f64;
    assert!(
        (plan_mults_per_filter - rep.mean_distinct_nonzero).abs() < 1e-9,
        "{plan_mults_per_filter} vs {}",
        rep.mean_distinct_nonzero
    );
}

/// The cycle-accurate lane and the analytic plan agree on multiply counts
/// and entry cycles for the same stream.
#[test]
fn lane_and_plan_agree() {
    use ucnn::core::hierarchy::GroupStream;
    let mut wgen = WeightGen::new(QuantScheme::inq(), 9).with_density(0.9);
    let weights = wgen.generate_dims(2, 32, 3, 3);
    let plan = compile_layer(
        &weights,
        &UcnnConfig {
            ct: 32,
            ..UcnnConfig::with_g(2)
        },
    );

    let slices: Vec<&[i16]> = vec![weights.filter(0), weights.filter(1)];
    let stream = GroupStream::build_with_canonical(
        &slices,
        &ucnn::core::compile::canonical_of_tensor(&weights),
    );
    let acts: Vec<i16> = (0..stream.tile_len()).map(|i| (i % 11) as i16).collect();
    let trace = run_lane(&stream, &acts, &LaneConfig::default());

    assert_eq!(trace.multiplies as usize, plan.totals().multiplies);
    assert_eq!(trace.data_cycles as usize, plan.totals().entries);
}

/// Energy ordering across the whole stack on a real layer: UCNN < DCNN_sp <
/// DCNN at 16-bit, and the savings factor lies in the paper's band.
#[test]
fn energy_ordering_on_lenet_conv2() {
    let net = networks::lenet();
    let layer = net.conv_layer("conv2").unwrap();
    let mut wgen = WeightGen::new(QuantScheme::uniform_unique(17), 3).with_density(0.9);
    let weights = wgen.generate(&layer);

    let dcnn = Simulator::new(ArchConfig::dcnn(16)).simulate_layer(&layer, &weights, 0.35);
    let sp = Simulator::new(ArchConfig::dcnn_sp(16)).simulate_layer(&layer, &weights, 0.35);
    let ucnn = Simulator::new(ArchConfig::ucnn(17, 16)).simulate_layer(&layer, &weights, 0.35);

    let e = |r: &ucnn::sim::LayerReport| r.energy.total_pj();
    assert!(e(&ucnn) < e(&sp));
    assert!(e(&sp) <= e(&dcnn));
    let factor = e(&sp) / e(&ucnn);
    assert!(
        (1.1..6.0).contains(&factor),
        "UCNN vs DCNN_sp factor {factor:.2} outside the plausible band"
    );
}

/// Model compression: on INQ-like weights the G=2 tables undercut the dense
/// 16-bit model by >2× and the G=1 tables by less — the Figure 13 ordering.
#[test]
fn model_size_ordering() {
    let mut wgen = WeightGen::new(QuantScheme::inq(), 4).with_density(0.9);
    let weights = wgen.generate_dims(8, 256, 3, 3);
    let g1 = compile_layer(&weights, &UcnnConfig::with_g(1)).bits_per_weight();
    let g2 = compile_layer(&weights, &UcnnConfig::with_g(2)).bits_per_weight();
    assert!(g2 < g1);
    assert!(g2 < 8.0, "G=2 must beat an 8-bit dense model, got {g2}");
    assert!(g1 < 16.0);
}

/// Pooling and ReLU chained after a simulated conv layer keep shapes
/// consistent with the network spec (substrate sanity across crates).
#[test]
fn layer_shape_chaining() {
    let net = networks::lenet();
    let convs = net.conv_layers();
    let mut agen = ActivationGen::new(1);
    let mut act = agen.generate_for(&convs[0]);
    // conv1 → pool(3,2) → conv2 input plane must match the spec.
    let mut wgen = WeightGen::new(QuantScheme::ttq(), 2).with_density(0.5);
    let w1 = wgen.generate(&convs[0]);
    act = reference::relu_saturate(&reference::conv_layer(&convs[0], &act, &w1));
    act = reference::pool2d(&act, PoolKind::Max, 3, 2);
    assert_eq!((act.c(), act.w(), act.h()), (32, 16, 16));
    assert_eq!(convs[1].geom().in_w(), act.w());
    assert_eq!(convs[1].total_in_channels(), act.c());
}
