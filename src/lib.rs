//! # UCNN — exploiting computational reuse in DNNs via weight repetition
//!
//! A full reproduction of *UCNN: Exploiting Computational Reuse in Deep
//! Neural Networks via Weight Repetition* (Hegde et al., ISCA 2018) as a
//! Rust library suite. This facade crate re-exports the member crates:
//!
//! | crate | contents |
//! |-------|----------|
//! | [`tensor`] | dense 3-D/4-D tensors and convolution geometry |
//! | [`model`] | networks (LeNet/AlexNet/ResNet-50), quantization (INQ/TTQ/fixed), generators, reference convolution, repetition statistics |
//! | [`core`] | **the paper's contribution**: dot-product factorization, activation-group reuse, indirection-table encodings, functional factorized executor |
//! | [`sim`] | DCNN/DCNN_sp/UCNN processing-element and chip models: cycles, energy, area |
//! | [`serve`] | compile-once batched inference engine: model registry, worker pool, closed/open-loop stress harness |
//!
//! # Example: factorize a layer and weigh it against the dense baseline
//!
//! ```
//! use ucnn::model::{networks, QuantScheme, WeightGen};
//! use ucnn::sim::{ArchConfig, Simulator};
//!
//! let net = networks::lenet();
//! let layer = net.conv_layer("conv2").unwrap();
//! let mut gen = WeightGen::new(QuantScheme::inq(), 7).with_density(0.9);
//! let weights = gen.generate(&layer);
//!
//! let baseline = Simulator::new(ArchConfig::dcnn_sp(16)).simulate_layer(&layer, &weights, 0.35);
//! let ucnn = Simulator::new(ArchConfig::ucnn(17, 16)).simulate_layer(&layer, &weights, 0.35);
//! let savings = baseline.energy.total_pj() / ucnn.energy.total_pj();
//! assert!(savings > 1.0);
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and `crates/bench` for
//! the harness regenerating every table and figure of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Tensor substrate (re-export of `ucnn-tensor`).
pub mod tensor {
    pub use ucnn_tensor::*;
}

/// CNN model substrate (re-export of `ucnn-model`).
pub mod model {
    pub use ucnn_model::*;
}

/// UCNN core algorithms (re-export of `ucnn-core`).
pub mod core {
    pub use ucnn_core::*;
}

/// Accelerator simulator (re-export of `ucnn-sim`).
pub mod sim {
    pub use ucnn_sim::*;
}

/// Serving engine and stress harness (re-export of `ucnn-serve`).
pub mod serve {
    pub use ucnn_serve::*;
}
