//! Offline stand-in for the [`criterion`](https://docs.rs/criterion) bench
//! harness.
//!
//! The build environment for this repository has no crates.io access, so this
//! vendored shim implements the subset of the Criterion API that
//! `crates/bench/benches/{figures,micro}.rs` use: [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros. Timing is a simple
//! wall-clock mean over an adaptively chosen iteration count — good enough to
//! exercise every bench path end to end and spot order-of-magnitude
//! regressions, without Criterion's statistical machinery.
//!
//! The API is call-compatible for the subset used, so replacing this shim
//! with the real crate requires only a manifest change.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Target measurement time per benchmark (after warm-up).
const MEASURE_TARGET: Duration = Duration::from_millis(200);
/// Warm-up time used to estimate per-iteration cost.
const WARMUP_TARGET: Duration = Duration::from_millis(50);

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs `f` as a named benchmark and prints its mean wall-clock time.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _parent: self,
        }
    }
}

/// A group of related benchmarks, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes samples by time alone.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs `f` as a benchmark named `group/id`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&full, f);
        self
    }

    /// Runs `f` with `input` as a benchmark named `group/id`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&full, |b| f(b, input));
        self
    }

    /// Ends the group (no-op in the shim; kept for API compatibility).
    pub fn finish(self) {}
}

/// A benchmark identifier, mirroring `criterion::BenchmarkId`.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        Self {
            text: format!("{function_name}/{parameter}"),
        }
    }
}

/// Conversion into the textual benchmark id used by [`BenchmarkGroup`].
pub trait IntoBenchmarkId {
    /// The `group/…` suffix naming this benchmark.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.text
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Per-benchmark timing driver handed to the closure, mirroring
/// `criterion::Bencher`.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the iteration count chosen by the harness.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F>(name: &str, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Warm-up: grow the iteration count until the routine has run for
    // WARMUP_TARGET, giving a per-iteration estimate.
    let mut iters: u64 = 1;
    let per_iter = loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= WARMUP_TARGET || iters >= 1 << 20 {
            break b.elapsed.as_secs_f64() / iters as f64;
        }
        iters = iters.saturating_mul(4);
    };

    let measured = ((MEASURE_TARGET.as_secs_f64() / per_iter.max(1e-9)) as u64).clamp(1, 1 << 24);
    let mut b = Bencher {
        iters: measured,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let mean_ns = b.elapsed.as_secs_f64() * 1e9 / measured as f64;
    println!("{name:<48} time: {} ({measured} iters)", fmt_ns(mean_ns));
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns/iter")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs/iter", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms/iter", ns / 1_000_000.0)
    } else {
        format!("{:.3} s/iter", ns / 1_000_000_000.0)
    }
}

/// Declares a bench group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_times() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("smoke", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }

    #[test]
    fn groups_compose() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        g.bench_function("plain", |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::new("param", 4), &4usize, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
    }
}
