//! `any::<T>()` — the full-domain strategy for primitive types.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy over the whole domain of `T`; returned by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(PhantomData<T>);

/// A strategy producing arbitrary values of `T`, mirroring
/// `proptest::arbitrary::any`.
#[must_use]
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy<Value = T>,
{
    Any(PhantomData)
}

macro_rules! impl_any_int {
    ($($t:ty),+ $(,)?) => {
        $(
            impl Strategy for Any<$t> {
                type Value = $t;

                #[allow(clippy::cast_possible_truncation)]
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )+
    };
}

impl_any_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Strategy for Any<bool> {
    type Value = bool;

    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Any<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.next_f64()
    }
}
