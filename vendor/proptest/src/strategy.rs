//! The [`Strategy`] trait and the range strategies the tests draw from.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of type [`Strategy::Value`].
///
/// Mirrors `proptest::strategy::Strategy` minus shrinking: a strategy only
/// needs to sample a value from a [`TestRng`].
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),+ $(,)?) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (u128::from(rng.next_u64()) % span) as i128) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    (lo as i128 + (u128::from(rng.next_u64()) % span) as i128) as $t
                }
            }
        )+
    };
}

impl_int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),+ $(,)?) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.next_f64() as $t) * (self.end - self.start)
                }
            }
        )+
    };
}

impl_float_range_strategy!(f32, f64);

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}
