//! Collection strategies: `vec(element, size)`.

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Anything accepted as the size argument of [`vec()`], mirroring
/// `proptest::collection::SizeRange` conversions.
pub trait IntoSizeRange {
    /// The inclusive `(min, max)` length bounds.
    fn bounds(&self) -> (usize, usize);
}

impl IntoSizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self)
    }
}

impl IntoSizeRange for Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "empty size range");
        (self.start, self.end - 1)
    }
}

impl IntoSizeRange for RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start() <= self.end(), "empty size range");
        (*self.start(), *self.end())
    }
}

/// Strategy for `Vec<S::Value>` with lengths drawn from a size range.
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    min_len: usize,
    max_len: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.max_len - self.min_len + 1) as u64;
        let len = self.min_len + (rng.next_u64() % span) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// A strategy producing vectors whose elements come from `element` and whose
/// length lies in `size`, mirroring `proptest::collection::vec`.
#[must_use]
pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
    let (min_len, max_len) = size.bounds();
    VecStrategy {
        element,
        min_len,
        max_len,
    }
}
