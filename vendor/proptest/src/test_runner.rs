//! The deterministic case runner and its PRNG.

/// Why a single property case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case was discarded by [`prop_assume!`](crate::prop_assume) —
    /// another input is drawn instead.
    Reject,
    /// An assertion failed; the message explains what.
    Fail(String),
}

impl TestCaseError {
    /// Builds the failure variant.
    #[must_use]
    pub fn fail(message: String) -> Self {
        Self::Fail(message)
    }
}

/// xoshiro256** seeded via SplitMix64 — deterministic and statistically
/// strong enough for input sampling.
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Creates a generator whose stream is fully determined by `seed`.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next 64 uniformly distributed bits.
    #[must_use]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)`, built from the top 53 bits.
    #[must_use]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn fnv1a(text: &str) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for b in text.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Drives one property: samples inputs and runs `case` until the configured
/// number of cases pass, a case fails, or too many are rejected.
///
/// The seed is derived from the test name (so distinct properties explore
/// distinct streams) and can be overridden with `PROPTEST_SEED`; the case
/// count (default 64) with `PROPTEST_CASES`.
///
/// # Panics
///
/// Panics when a case fails or when rejection exhausts the attempt budget —
/// that is how failures reach the test harness.
pub fn run<F>(name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let cases = env_usize("PROPTEST_CASES", 64);
    let seed = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| fnv1a(name));
    let mut rng = TestRng::seed_from_u64(seed);
    let mut passed = 0usize;
    let mut rejected = 0usize;
    while passed < cases {
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected <= cases.saturating_mul(16).max(256),
                    "{name}: too many rejected cases ({rejected}) — \
                     prop_assume! conditions are rarely satisfiable"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "{name}: property failed after {passed} passing case(s) \
                     (seed {seed}, rerun with PROPTEST_SEED={seed}):\n{msg}"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_configured_cases() {
        let mut calls = 0usize;
        run("passing", |_| {
            calls += 1;
            Ok(())
        });
        assert!(calls >= 1);
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failing_property_panics_with_seed() {
        run("failing", |rng| {
            let v = rng.next_u64() % 10;
            if v < 10 {
                Err(TestCaseError::fail(format!("{v} is always < 10")))
            } else {
                Ok(())
            }
        });
    }

    #[test]
    #[should_panic(expected = "too many rejected cases")]
    fn unsatisfiable_assume_is_reported() {
        run("rejecting", |_| Err(TestCaseError::Reject));
    }

    #[test]
    fn sampling_is_deterministic_per_name() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        run("stream", |rng| {
            a.push(rng.next_u64());
            Ok(())
        });
        run("stream", |rng| {
            b.push(rng.next_u64());
            Ok(())
        });
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }
}
