//! Offline stand-in for the [`proptest`](https://docs.rs/proptest) crate.
//!
//! The build environment for this repository has no crates.io access, so this
//! vendored shim implements the subset of the proptest API that the
//! workspace's property tests use:
//!
//! * the [`proptest!`], [`prop_assert!`], [`prop_assert_eq!`] and
//!   [`prop_assume!`] macros,
//! * the [`strategy::Strategy`] trait with integer/float range strategies,
//!   [`arbitrary::any`], and [`collection::vec`],
//! * a deterministic [`test_runner`] (seed derived from the test name,
//!   overridable via `PROPTEST_SEED`; case count via `PROPTEST_CASES`).
//!
//! Unlike real proptest there is **no shrinking**: a failing case reports the
//! seed and case number so it can be replayed, but is not minimized. The API
//! is call-compatible for the subset used, so replacing this shim with the
//! real crate requires only a manifest change.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Items a test file gets from `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Mirrors `proptest::proptest!`: each function runs for a configurable
/// number of cases with inputs sampled deterministically.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run(stringify!($name), |__rng| {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), __rng);)+
                    let mut __case = move || -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::core::result::Result::Ok(())
                    };
                    __case()
                });
            }
        )+
    };
}

/// Fails the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current property case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `left == right`\n  left: {:?}\n right: {:?}", __l, __r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `left == right`\n  left: {:?}\n right: {:?}\n{}",
                    __l,
                    __r,
                    format!($($fmt)+),
                ),
            ));
        }
    }};
}

/// Discards the current property case unless `cond` holds (does not fail).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
